// Package rpc provides the multi-process execution mode: TARDIS index
// construction distributed over TCP with Go's net/rpc, the stand-in for the
// paper's Spark cluster when the workers are real separate processes rather
// than goroutines. A coordinator (cmd/tardis-build -rpc, or BuildDistributed
// here) drives worker processes (cmd/tardis-worker) through the same four
// stages as the in-process build: sample+convert on workers, node statistics
// and skeleton building on the coordinator, a spill-based shuffle across the
// shared filesystem, and per-partition local index construction on workers.
//
// Workers and coordinator share a filesystem (the HDFS stand-in): dataset
// stores, spill stores, and the output clustered store are directories of
// block files, so the only bytes on the wire are control messages, sampled
// signature statistics, and the broadcast global tree — mirroring Spark's
// separation of control plane and HDFS data plane.
package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"sync"

	"github.com/tardisdb/tardis/internal/bloom"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/faultinj"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// Worker-side failpoints, labeled with the worker ID so a fault schedule can
// target one worker of an in-process test cluster.
const (
	PointWorkerSampleConvert = "worker.SampleConvert"
	PointWorkerSpill         = "worker.Spill"
	PointWorkerBuildLocals   = "worker.BuildLocals"
	PointWorkerKNN           = "worker.KNNPartition"
	PointWorkerRange         = "worker.RangePartition"
)

// Worker is the net/rpc service exposed by a worker process.
type Worker struct {
	// ID names the worker for spill directories and logs.
	ID string

	mu      sync.Mutex
	tasks   map[string]int64 // guarded by mu
	records int64            // guarded by mu
}

// startSpan opens the worker-side span for one RPC, parented to the
// coordinator's rpc.call span when the args carried a trace context. The
// span starts before the method's fault-injection point so failed and
// retried attempts appear in the trace too.
func (w *Worker) startSpan(sc obs.SpanContext, name string) *obs.Span {
	_, span := obs.StartRemoteSpan(context.Background(), sc, name)
	span.Annotate("worker", w.ID)
	return span
}

// track counts one completed RPC and the records it touched. Unexported
// methods are invisible to net/rpc, so this never becomes a remote endpoint.
func (w *Worker) track(method string, records int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.tasks == nil {
		w.tasks = map[string]int64{}
	}
	w.tasks[method]++
	w.records += records
}

// StatsArgs is empty; Stats reports accumulated task counters.
type StatsArgs struct{}

// StatsReply carries per-method task counts, the total records processed by
// this worker since it started serving, and the decoded-partition cache
// gauges.
type StatsReply struct {
	ID      string
	Tasks   map[string]int64
	Records int64
	// Partition-cache counters (see pcache.Stats).
	CacheHits        int64
	CacheMisses      int64
	CacheEvictions   int64
	CacheBytes       int64
	CacheEntries     int64
	CacheBudgetBytes int64
}

// Stats reports how many RPCs of each kind this worker has served, how many
// records they processed, and the state of its partition cache.
func (w *Worker) Stats(_ StatsArgs, reply *StatsReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	reply.ID = w.ID
	reply.Tasks = make(map[string]int64, len(w.tasks))
	for method, n := range w.tasks {
		reply.Tasks[method] = n
	}
	reply.Records = w.records
	cs := workerDataCache.Stats()
	reply.CacheHits = cs.Hits
	reply.CacheMisses = cs.Misses
	reply.CacheEvictions = cs.Evictions
	reply.CacheBytes = cs.Bytes
	reply.CacheEntries = cs.Entries
	reply.CacheBudgetBytes = cs.Budget
	return nil
}

// PingArgs is empty; Ping verifies liveness.
type PingArgs struct{}

// PingReply reports worker identity.
type PingReply struct {
	ID       string
	Hostname string
	PID      int
}

// Ping answers a liveness probe.
func (w *Worker) Ping(_ PingArgs, reply *PingReply) error {
	host, _ := os.Hostname()
	reply.ID = w.ID
	reply.Hostname = host
	reply.PID = os.Getpid()
	w.track("Ping", 0)
	return nil
}

// SampleConvertArgs asks the worker to scan dataset blocks and return iSAX-T
// signature frequencies (the map side of the sampling stage).
type SampleConvertArgs struct {
	StoreDir string
	PIDs     []int
	WordLen  int
	Bits     int
	// Trace carries the coordinator's span identity across the wire (net/rpc
	// has no metadata channel); the zero value means "not traced".
	Trace obs.SpanContext
}

// SampleConvertReply carries the combined signature frequencies.
type SampleConvertReply struct {
	Freq    map[string]int64
	Records int64
}

// SampleConvert scans the given blocks of the dataset store, converts each
// record to its iSAX-T signature, and returns per-signature counts.
func (w *Worker) SampleConvert(args SampleConvertArgs, reply *SampleConvertReply) (err error) {
	span := w.startSpan(args.Trace, "worker.sample_convert")
	defer func() { span.SetError(err); span.Finish() }()
	if err := faultinj.InjectAs(PointWorkerSampleConvert, w.ID); err != nil {
		return MarkRetryable(err)
	}
	codec, err := isaxt.NewCodec(args.WordLen)
	if err != nil {
		return err
	}
	st, err := storage.Open(args.StoreDir)
	if err != nil {
		return MarkRetryable(err)
	}
	freq := map[string]int64{}
	var records int64
	for _, pid := range args.PIDs {
		err := st.ScanPartition(pid, func(r ts.Record) error {
			sig, err := codec.FromSeries(r.Values, args.Bits)
			if err != nil {
				return err
			}
			freq[string(sig)]++
			records++
			return nil
		})
		if err != nil {
			return MarkRetryable(err)
		}
	}
	reply.Freq = freq
	reply.Records = records
	w.track("SampleConvert", records)
	return nil
}

// SpillArgs asks the worker to route its share of the dataset through the
// broadcast global tree, spilling records into per-target-partition files
// under its own spill store.
type SpillArgs struct {
	SrcDir     string
	SrcPIDs    []int
	GlobalTree []byte // serialized global sigTree (the broadcast)
	WordLen    int
	Bits       int
	SpillDir   string // this worker's spill store directory
	Trace      obs.SpanContext
}

// SpillReply reports how many records were routed to each target partition.
type SpillReply struct {
	Counts map[int]int64
}

// Spill implements the worker half of the shuffle: read source blocks,
// convert, route, and append to spill partitions keyed by target pid. It is
// idempotent: the spill store is recreated from scratch, so re-executing a
// chunk on another worker after a failure yields the same bytes.
func (w *Worker) Spill(args SpillArgs, reply *SpillReply) (err error) {
	span := w.startSpan(args.Trace, "worker.spill")
	defer func() { span.SetError(err); span.Finish() }()
	if err := faultinj.InjectAs(PointWorkerSpill, w.ID); err != nil {
		return MarkRetryable(err)
	}
	codec, err := isaxt.NewCodec(args.WordLen)
	if err != nil {
		return err
	}
	tree, err := sigtree.ReadTree(bytes.NewReader(args.GlobalTree))
	if err != nil {
		return fmt.Errorf("rpc: decoding broadcast global tree: %w", err)
	}
	router := core.NewRouter(tree)
	src, err := storage.Open(args.SrcDir)
	if err != nil {
		return MarkRetryable(err)
	}
	// Clear any partial output from an earlier attempt on a failed worker:
	// stores are write-once, so the retried chunk starts from an empty dir.
	if err := os.RemoveAll(args.SpillDir); err != nil {
		return MarkRetryable(err)
	}
	spill, err := storage.Create(args.SpillDir, src.SeriesLen())
	if err != nil {
		return MarkRetryable(err)
	}
	writers := map[int]*storage.Writer{}
	defer func() {
		// Error-path cleanup only: the happy path closes and removes every
		// writer below, so a failed close here has no caller to report to.
		for _, wr := range writers {
			_ = wr.Close()
		}
	}()
	counts := map[int]int64{}
	for _, pid := range args.SrcPIDs {
		err := src.ScanPartition(pid, func(r ts.Record) error {
			sig, err := codec.FromSeries(r.Values, args.Bits)
			if err != nil {
				return err
			}
			target, err := router.Route(sig, r.RID)
			if err != nil {
				return err
			}
			wr := writers[target]
			if wr == nil {
				wr, err = spill.NewWriter(target)
				if err != nil {
					return err
				}
				writers[target] = wr
			}
			if err := wr.Write(r); err != nil {
				return err
			}
			counts[target]++
			return nil
		})
		if err != nil {
			return MarkRetryable(err)
		}
	}
	for target, wr := range writers {
		if err := wr.Close(); err != nil {
			return MarkRetryable(err)
		}
		delete(writers, target)
		_ = target
	}
	if err := spill.Sync(); err != nil {
		return MarkRetryable(err)
	}
	reply.Counts = counts
	var total int64
	for _, n := range counts {
		total += n
	}
	w.track("Spill", total)
	return nil
}

// BuildLocalsArgs asks the worker to merge spill partitions into final
// clustered partitions it owns, building the local sigTree and Bloom filter
// for each and writing them into the store's index directory.
type BuildLocalsArgs struct {
	SpillDirs  []string // one spill store per source worker
	DstDir     string   // the clustered store (already created)
	PIDs       []int    // target partitions owned by this worker
	WordLen    int
	Bits       int
	LMaxSize   int64
	BuildBloom bool
	BloomFP    float64
	Trace      obs.SpanContext
}

// BuildLocalsReply reports per-partition record counts and the CRC32C
// content checksum of each written partition — the seed values for the
// PartitionMap and the canonical store's manifest.
type BuildLocalsReply struct {
	Counts    map[int]int64
	Checksums map[int]uint32
}

// BuildLocals merges the spills for each owned partition, writes the final
// partition file, and constructs Tardis-L and the Bloom filter. It is
// idempotent: each owned partition file is deleted before being rewritten,
// so a chunk re-executed after a failure yields the same partitions.
func (w *Worker) BuildLocals(args BuildLocalsArgs, reply *BuildLocalsReply) (err error) {
	span := w.startSpan(args.Trace, "worker.build_locals")
	defer func() { span.SetError(err); span.Finish() }()
	if err := faultinj.InjectAs(PointWorkerBuildLocals, w.ID); err != nil {
		return MarkRetryable(err)
	}
	codec, err := isaxt.NewCodec(args.WordLen)
	if err != nil {
		return err
	}
	dst, err := storage.Open(args.DstDir)
	if err != nil {
		return MarkRetryable(err)
	}
	spills := make([]*storage.Store, 0, len(args.SpillDirs))
	for _, dir := range args.SpillDirs {
		st, err := storage.Open(dir)
		if err != nil {
			return MarkRetryable(err)
		}
		spills = append(spills, st)
	}
	counts := map[int]int64{}
	checksums := map[int]uint32{}
	for _, pid := range args.PIDs {
		var recs []ts.Record
		for _, sp := range spills {
			part, err := sp.ReadPartition(pid)
			if err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					continue // this source worker routed nothing here
				}
				return MarkRetryable(err)
			}
			recs = append(recs, part...)
		}
		// Clear a partial write from an earlier attempt (write-once files).
		if err := dst.DeletePartition(pid); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return MarkRetryable(err)
		}
		wtr, err := dst.NewWriter(pid)
		if err != nil {
			return MarkRetryable(err)
		}
		tree, err := sigtree.New(codec, args.Bits, args.LMaxSize)
		if err != nil {
			return err
		}
		var bf *bloom.Filter
		if args.BuildBloom {
			n := uint64(len(recs))
			if n == 0 {
				n = 1
			}
			bf, err = bloom.NewWithEstimate(n, args.BloomFP)
			if err != nil {
				return err
			}
		}
		for _, r := range recs {
			if err := wtr.Write(r); err != nil {
				return MarkRetryable(err)
			}
			sig, err := codec.FromSeries(r.Values, args.Bits)
			if err != nil {
				return err
			}
			if err := tree.Insert(sigtree.Entry{Sig: sig, RID: r.RID}); err != nil {
				return err
			}
			if bf != nil {
				bf.AddString(string(sig))
			}
		}
		if err := wtr.Close(); err != nil {
			return MarkRetryable(err)
		}
		if err := core.WriteLocal(args.DstDir, pid, tree, bf); err != nil {
			return MarkRetryable(err)
		}
		counts[pid] = int64(len(recs))
		checksums[pid] = wtr.ContentChecksum()
	}
	reply.Counts = counts
	reply.Checksums = checksums
	var total int64
	for _, n := range counts {
		total += n
	}
	w.track("BuildLocals", total)
	return nil
}

func sqrtf(v float64) float64 { return math.Sqrt(v) }

func inf() float64 { return math.Inf(1) }
