package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tardisdb/tardis/internal/obs"
)

// Fault-tolerant coordinator side of the RPC layer. Every remote call runs
// under a context with a per-call timeout, retries transport failures with
// capped exponential backoff and seeded jitter, reconnects dropped net/rpc
// clients, and trips a per-worker circuit breaker after consecutive
// failures. Stage fan-outs route through each()/eachReplica(), which reassign
// a failed worker's tasks to survivors (worker RPCs are idempotent) and — in
// best-effort mode — skip tasks no surviving worker can run instead of
// failing the whole stage. Membership is dynamic: AddWorker/RemoveWorker
// adjust the routable set between stages without disturbing in-flight ones.

// Policy configures retries, timeouts, and the per-worker circuit breaker.
// The zero value of any field falls back to the DefaultPolicy value.
type Policy struct {
	// MaxAttempts bounds tries per call (first attempt included).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// retry up to MaxDelay. Jitter in [delay/2, 3*delay/2) is drawn from a
	// generator seeded with Seed, so tests are reproducible.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// DialTimeout bounds each (re)connect to a worker.
	DialTimeout time.Duration
	// CallTimeout bounds each RPC attempt. A timed-out attempt drops the
	// connection so the abandoned response cannot race a later attempt.
	CallTimeout time.Duration
	// StageTimeout, when positive, bounds each build stage or query fan-out.
	StageTimeout time.Duration
	// BreakerThreshold opens a worker's breaker after that many consecutive
	// transport failures. While open — for BreakerCooldown plus a seeded
	// jitter in [0, BreakerCooldown/2) so a fleet of coordinators does not
	// re-probe a recovering worker in lockstep — calls fail fast; after the
	// window a single trial call (the half-open probe) is let through, and
	// its outcome closes or re-opens the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Seed makes the retry and breaker jitter deterministic. Zero falls back
	// to the default seed, keeping tests reproducible by default.
	Seed int64
}

// DefaultPolicy returns the production defaults.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:      3,
		BaseDelay:        25 * time.Millisecond,
		MaxDelay:         2 * time.Second,
		DialTimeout:      5 * time.Second,
		CallTimeout:      2 * time.Minute,
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Second,
		Seed:             1,
	}
}

func (pol Policy) withDefaults() Policy {
	def := DefaultPolicy()
	if pol.MaxAttempts <= 0 {
		pol.MaxAttempts = def.MaxAttempts
	}
	if pol.BaseDelay <= 0 {
		pol.BaseDelay = def.BaseDelay
	}
	if pol.MaxDelay <= 0 {
		pol.MaxDelay = def.MaxDelay
	}
	if pol.DialTimeout <= 0 {
		pol.DialTimeout = def.DialTimeout
	}
	if pol.CallTimeout <= 0 {
		pol.CallTimeout = def.CallTimeout
	}
	if pol.BreakerThreshold <= 0 {
		pol.BreakerThreshold = def.BreakerThreshold
	}
	if pol.BreakerCooldown <= 0 {
		pol.BreakerCooldown = def.BreakerCooldown
	}
	if pol.Seed == 0 {
		pol.Seed = def.Seed
	}
	return pol
}

// ErrBreakerOpen reports a call rejected because the worker's circuit
// breaker is open.
var ErrBreakerOpen = errors.New("rpc: circuit breaker open")

// WorkerDownError reports that a worker could not complete a call after all
// retries: unreachable, hung past the call timeout, breaker open, or
// repeatedly failing with a retryable (machine-local) error. The failover
// executor treats it as "reassign this task"; anything else is an
// application error that aborts the stage.
type WorkerDownError struct {
	Addr string
	Err  error
}

func (e *WorkerDownError) Error() string {
	return fmt.Sprintf("rpc: worker %s unavailable: %v", e.Addr, e.Err)
}

func (e *WorkerDownError) Unwrap() error { return e.Err }

// retryableMark prefixes worker-side errors that are safe to retry on
// another worker. net/rpc flattens errors to strings on the wire, so the
// classification has to ride inside the message.
const retryableMark = "tardis-retryable: "

// MarkRetryable marks a worker-side error as machine-local (I/O on the
// worker's disk, a torn spill read, an injected storage fault): the
// coordinator may re-run the idempotent call on another worker. Unmarked
// worker errors are treated as deterministic application failures and abort
// the stage.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s%w", retryableMark, err)
}

// isRemoteAppError reports whether err came back from the worker's method
// (as opposed to dying on the wire).
func isRemoteAppError(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se)
}

// isRetryableRemote reports whether a remote application error carries the
// MarkRetryable prefix.
func isRetryableRemote(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se) && strings.Contains(string(se), retryableMark)
}

// Breaker states, tracked so each transition can be counted exactly once.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// workerState is the per-worker connection plus breaker bookkeeping.
type workerState struct {
	addr string

	// inflight counts RPC attempts currently outstanding against this
	// worker, across every concurrent stage and query; replica-aware routing
	// prefers the least-loaded live replica.
	inflight atomic.Int64

	mu        sync.Mutex
	client    *rpc.Client // guarded by mu; nil when disconnected
	fails     int         // guarded by mu; consecutive transport failures
	openUntil time.Time   // guarded by mu; breaker open until this instant
	state     int         // guarded by mu; stateClosed/Open/HalfOpen
	probing   bool        // guarded by mu; the single half-open trial is in flight
}

// acquire returns a connected client, dialing if needed. While the breaker is
// open it fails fast; once the jittered cooldown expires exactly one caller
// is admitted as the half-open probe and everyone else keeps failing fast
// until the probe's outcome closes or re-opens the breaker.
func (w *workerState) acquire(ctx context.Context, pol Policy) (*rpc.Client, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.fails >= pol.BreakerThreshold {
		if time.Now().Before(w.openUntil) {
			return nil, fmt.Errorf("worker %s: %w", w.addr, ErrBreakerOpen)
		}
		if w.probing {
			// A trial call is already in flight; only one probe at a time.
			return nil, fmt.Errorf("worker %s (probe in flight): %w", w.addr, ErrBreakerOpen)
		}
		// Cooldown expired: this caller is the probe.
		if w.state != stateHalfOpen {
			w.state = stateHalfOpen
			mBreakerTransitions.With(breakerHalfOpen).Inc()
		}
		w.probing = true
	}
	if w.client != nil {
		return w.client, nil
	}
	d := net.Dialer{Timeout: pol.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", w.addr)
	if err != nil {
		return nil, err
	}
	w.client = rpc.NewClient(conn)
	return w.client, nil
}

// dropConn closes c and forgets it if it is still the live client, so the
// next attempt redials. Closing also terminates any abandoned in-flight call
// on c, which would otherwise decode a late response into a stale reply.
func (w *workerState) dropConn(c *rpc.Client) {
	w.mu.Lock()
	if w.client == c {
		w.client = nil
	}
	w.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// recordFailure counts one transport failure; on reaching the threshold (or
// failing the half-open probe) the breaker (re)opens for the cooldown plus
// the given jitter.
func (w *workerState) recordFailure(pol Policy, jitter time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails++
	w.probing = false
	if w.fails >= pol.BreakerThreshold {
		w.openUntil = time.Now().Add(pol.BreakerCooldown + jitter)
		if w.state != stateOpen {
			// First trip, or a half-open probe that failed: (re)open.
			w.state = stateOpen
			mBreakerTransitions.With(breakerOpen).Inc()
		}
	}
}

func (w *workerState) recordSuccess() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails = 0
	w.openUntil = time.Time{}
	w.probing = false
	if w.state != stateClosed {
		w.state = stateClosed
		mBreakerTransitions.With(breakerClosed).Inc()
	}
}

// abandonProbe releases the half-open probe slot without deciding the
// breaker's fate — used when the probe call is cancelled by the caller's
// context rather than failing against the worker.
func (w *workerState) abandonProbe() {
	w.mu.Lock()
	w.probing = false
	w.mu.Unlock()
}

// tripped reports whether the worker has burned through its breaker
// threshold. The failover executor uses it to stop assigning new tasks to a
// worker for the rest of the stage (cooldown expiry is irrelevant there).
func (w *workerState) tripped(pol Policy) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fails >= pol.BreakerThreshold
}

// Pool is a set of workers driven by the coordinator. The worker set is
// dynamic: AddWorker and RemoveWorker adjust membership (e.g. from the
// coordinator ensemble's committed view); stages snapshot the set at entry.
type Pool struct {
	policy Policy

	wmu     sync.RWMutex
	workers []*workerState // guarded by wmu; copy-on-write, entries immutable

	rngMu sync.Mutex
	rng   *rand.Rand // guarded by rngMu; seeded retry + breaker jitter
}

// Dial connects with the default policy and no deadline.
func Dial(addrs []string) (*Pool, error) {
	return DialContext(context.Background(), addrs, DefaultPolicy())
}

// DialContext connects to the given worker addresses (host:port). It runs in
// degraded mode: the pool starts as long as at least one worker is
// reachable, and unreachable workers are redialed (with backoff and breaker)
// when calls route to them. Only a fully unreachable pool is an error.
func DialContext(ctx context.Context, addrs []string, pol Policy) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("rpc: no worker addresses")
	}
	pol = pol.withDefaults()
	p := &Pool{policy: pol, rng: rand.New(rand.NewSource(pol.Seed))}
	for _, addr := range addrs {
		p.workers = append(p.workers, &workerState{addr: addr}) //tardislint:ignore lockflow construction: the pool is unshared until DialContext returns
	}
	ws := p.snapshot()
	reachable := 0
	errs := make([]error, len(ws))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for wi, w := range ws {
		wg.Add(1)
		go func(wi int, w *workerState) {
			defer wg.Done()
			if _, err := w.acquire(ctx, pol); err != nil {
				errs[wi] = fmt.Errorf("rpc: dialing worker %s: %w", w.addr, err)
				return
			}
			mu.Lock()
			reachable++
			mu.Unlock()
		}(wi, w)
	}
	wg.Wait() //tardislint:ignore ctxflow bounded wait: every dialer goroutine honors ctx via acquire
	if reachable == 0 {
		p.Close()
		return nil, errors.Join(errs...)
	}
	return p, nil
}

// snapshot returns the current worker set; the slice is private to the
// caller, the entries are shared live state.
func (p *Pool) snapshot() []*workerState {
	p.wmu.RLock()
	defer p.wmu.RUnlock()
	ws := make([]*workerState, len(p.workers))
	copy(ws, p.workers)
	return ws
}

// AddWorker adds a worker address to the routable set. It reports whether the
// set changed (false when the address was already present). The connection is
// dialed lazily on first use.
func (p *Pool) AddWorker(addr string) bool { //tardislint:ignore ctxfirst lock-bound membership edit; the connection dials lazily so there is nothing to cancel
	p.wmu.Lock()
	defer p.wmu.Unlock()
	for _, w := range p.workers {
		if w.addr == addr {
			return false
		}
	}
	next := make([]*workerState, len(p.workers), len(p.workers)+1)
	copy(next, p.workers)
	p.workers = append(next, &workerState{addr: addr})
	return true
}

// RemoveWorker removes a worker from the routable set and closes its
// connection. Stages already running on a snapshot that includes it simply
// fail over off it. It reports whether the worker was present.
func (p *Pool) RemoveWorker(addr string) bool { //tardislint:ignore ctxfirst lock-bound membership edit; closing the removed conn does not block
	p.wmu.Lock()
	var removed *workerState
	next := make([]*workerState, 0, len(p.workers))
	for _, w := range p.workers {
		if w.addr == addr && removed == nil {
			removed = w
			continue
		}
		next = append(next, w)
	}
	if removed != nil {
		p.workers = next
	}
	p.wmu.Unlock()
	if removed == nil {
		return false
	}
	removed.mu.Lock()
	if removed.client != nil {
		_ = removed.client.Close()
		removed.client = nil
	}
	removed.mu.Unlock()
	return true
}

// Close closes all worker connections.
func (p *Pool) Close() {
	for _, w := range p.snapshot() {
		w.mu.Lock()
		if w.client != nil {
			_ = w.client.Close()
			w.client = nil
		}
		w.mu.Unlock()
	}
}

// Size returns the current worker count.
func (p *Pool) Size() int {
	p.wmu.RLock()
	defer p.wmu.RUnlock()
	return len(p.workers)
}

// Addrs returns the worker addresses in pool order.
func (p *Pool) Addrs() []string {
	ws := p.snapshot()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.addr
	}
	return out
}

// Policy returns the pool's effective (default-filled) policy.
func (p *Pool) Policy() Policy { return p.policy }

// WorkerHealth is a snapshot of one worker's breaker state and load.
type WorkerHealth struct {
	Addr      string `json:"addr"`
	Connected bool   `json:"connected"`
	// Fails counts consecutive transport failures since the last success.
	Fails       int  `json:"fails"`
	BreakerOpen bool `json:"breaker_open"`
	// InFlight counts RPC attempts currently outstanding against the worker.
	InFlight int `json:"in_flight"`
}

// Health snapshots every worker's breaker state without touching the wire.
func (p *Pool) Health() []WorkerHealth {
	ws := p.snapshot()
	out := make([]WorkerHealth, len(ws))
	for i, w := range ws {
		w.mu.Lock()
		out[i] = WorkerHealth{
			Addr:        w.addr,
			Connected:   w.client != nil,
			Fails:       w.fails,
			BreakerOpen: w.fails >= p.policy.BreakerThreshold && time.Now().Before(w.openUntil),
			InFlight:    int(w.inflight.Load()),
		}
		w.mu.Unlock()
	}
	return out
}

// backoff returns the jittered delay before the given retry (1-based).
func (p *Pool) backoff(retry int) time.Duration {
	d := p.policy.BaseDelay << uint(retry-1)
	if d > p.policy.MaxDelay || d <= 0 {
		d = p.policy.MaxDelay
	}
	p.rngMu.Lock()
	j := time.Duration(p.rng.Int63n(int64(d)))
	p.rngMu.Unlock()
	return d/2 + j
}

// breakerJitter draws the extra open-window delay in [0, cooldown/2) from the
// pool's seeded generator.
func (p *Pool) breakerJitter() time.Duration {
	half := int64(p.policy.BreakerCooldown / 2)
	if half <= 0 {
		return 0
	}
	p.rngMu.Lock()
	j := time.Duration(p.rng.Int63n(half))
	p.rngMu.Unlock()
	return j
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// invoke runs one attempt of method against w under the per-call timeout.
// Each attempt decodes into a fresh reply value: an abandoned attempt's
// client goroutine may still write its reply after we give up, so sharing
// one reply across attempts (or with the caller) would race.
func (p *Pool) invoke(ctx context.Context, w *workerState, c *rpc.Client, method string, args, reply any) error {
	if p.policy.CallTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.policy.CallTimeout)
		defer cancel()
	}
	fresh := reflect.New(reflect.TypeOf(reply).Elem())
	call := c.Go(method, args, fresh.Interface(), make(chan *rpc.Call, 1))
	select {
	case <-call.Done:
		if call.Error != nil {
			return call.Error
		}
		reflect.ValueOf(reply).Elem().Set(fresh.Elem())
		return nil
	case <-ctx.Done():
		// Abandon the in-flight call: drop the conn so net/rpc fails it
		// instead of decoding a late response into the abandoned reply.
		w.dropConn(c)
		return fmt.Errorf("%s to %s: %w", method, w.addr, ctx.Err())
	}
}

// injectTrace embeds the active span's identity into an args struct that
// declares a `Trace obs.SpanContext` field, returning a pointer to a copy so
// the caller's value stays untouched. net/rpc has no metadata channel, so
// this field is how a trace crosses the wire; with no active span args pass
// through unchanged and no reflection copy is made.
func injectTrace(ctx context.Context, args any) any {
	sc := obs.SpanContextOf(ctx)
	if !sc.Valid() {
		return args
	}
	v := reflect.ValueOf(args)
	if v.Kind() == reflect.Pointer {
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return args
	}
	f := v.FieldByName("Trace")
	if !f.IsValid() || f.Type() != reflect.TypeOf(obs.SpanContext{}) {
		return args
	}
	cp := reflect.New(v.Type())
	cp.Elem().Set(v)
	cp.Elem().FieldByName("Trace").Set(reflect.ValueOf(sc))
	return cp.Interface()
}

// callWorker runs method against the given worker with retries, reconnects,
// and the breaker. It returns nil, a (possibly retryable-marked) application
// error, the parent context's error, or *WorkerDownError once transport
// attempts are exhausted.
func (p *Pool) callWorker(ctx context.Context, w *workerState, method string, args, reply any) error {
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "rpc.call")
	span.Annotate("method", method)
	span.Annotate("worker", w.addr)
	args = injectTrace(ctx, args)
	w.inflight.Add(1)
	err := p.callAttempts(ctx, w, method, args, reply)
	w.inflight.Add(-1)
	span.SetError(err)
	span.Finish()
	mRPCDuration.With(method).Observe(time.Since(start).Seconds())
	var down *WorkerDownError
	switch {
	case err == nil:
		mRPCCalls.With(method, outcomeOK).Inc()
	case errors.As(err, &down):
		mRPCCalls.With(method, outcomeWorkerDown).Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		mRPCCalls.With(method, outcomeCanceled).Inc()
	default:
		mRPCCalls.With(method, outcomeAppError).Inc()
	}
	return err
}

func (p *Pool) callAttempts(ctx context.Context, w *workerState, method string, args, reply any) error {
	var errs []error
	for attempt := 1; attempt <= p.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			mRPCRetries.With(method).Inc()
			if err := sleepCtx(ctx, p.backoff(attempt-1)); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		c, err := w.acquire(ctx, p.policy)
		if err != nil {
			if errors.Is(err, ErrBreakerOpen) {
				// No point burning the remaining attempts against an open
				// breaker: fail over now.
				errs = append(errs, err)
				return &WorkerDownError{Addr: w.addr, Err: errors.Join(errs...)}
			}
			w.recordFailure(p.policy, p.breakerJitter())
			errs = append(errs, fmt.Errorf("attempt %d: %w", attempt, err))
			continue
		}
		err = p.invoke(ctx, w, c, method, args, reply)
		switch {
		case err == nil:
			w.recordSuccess()
			return nil
		case isRemoteAppError(err):
			// The worker answered: transport is healthy. Marked errors are
			// machine-local and eligible for failover; the rest are
			// deterministic application failures the caller must see.
			w.recordSuccess()
			if isRetryableRemote(err) {
				return &WorkerDownError{Addr: w.addr, Err: err}
			}
			return err
		case ctx.Err() != nil:
			// The caller's deadline or cancellation, not the worker's fault:
			// release the probe slot (if this call held it) without deciding
			// the breaker's fate.
			w.abandonProbe()
			return ctx.Err()
		default:
			w.dropConn(c)
			w.recordFailure(p.policy, p.breakerJitter())
			errs = append(errs, fmt.Errorf("attempt %d: %w", attempt, err))
		}
	}
	return &WorkerDownError{Addr: w.addr, Err: errors.Join(errs...)}
}

// scatter runs fn once per worker concurrently and returns every failure —
// each wrapped with its worker address — joined with errors.Join.
func (p *Pool) scatter(ctx context.Context, fn func(ctx context.Context, wi int, w *workerState) error) error {
	ws := p.snapshot()
	var wg sync.WaitGroup
	errs := make([]error, len(ws))
	for wi, w := range ws {
		wg.Add(1)
		go func(wi int, w *workerState) {
			defer wg.Done()
			if err := fn(ctx, wi, w); err != nil {
				errs[wi] = fmt.Errorf("rpc: worker %s: %w", w.addr, err)
			}
		}(wi, w)
	}
	wg.Wait() //tardislint:ignore ctxflow bounded wait: fn receives ctx and every goroutine returns once it is cancelled
	return errors.Join(errs...)
}

// eachStats reports how a fan-out went.
type eachStats struct {
	// reassigned counts task attempts rerouted to another worker after a
	// WorkerDownError.
	reassigned int
	// skipped lists tasks abandoned because no surviving worker could run
	// them (best-effort mode only), in ascending order.
	skipped []int
	// errs collects the per-task failures behind reassignments and skips.
	errs []error
}

// each runs tasks 0..n-1 across the pool with failover; every worker is
// eligible for every task. See eachOn.
func (p *Pool) each(ctx context.Context, n int, bestEffort bool, fn func(ctx context.Context, w *workerState, task int) error) (eachStats, error) {
	return p.eachOn(ctx, p.snapshot(), n, nil, bestEffort, fn)
}

// replicaTask scopes one fan-out task to the workers allowed to run it (the
// partition's replica owners). A nil set means any worker.
type replicaTask struct {
	eligible map[string]bool
}

// eachReplica runs one task per entry of tasks, restricting each task to its
// eligible workers and preferring the least-loaded live replica. A task
// whose every eligible worker is down is skipped (best-effort) or fails the
// stage (strict) — Degraded is reachable only when all replicas of a
// partition are down.
func (p *Pool) eachReplica(ctx context.Context, tasks []replicaTask, bestEffort bool, fn func(ctx context.Context, w *workerState, task int) error) (eachStats, error) {
	eligible := func(task int, w *workerState) bool {
		e := tasks[task].eligible
		return e == nil || e[w.addr]
	}
	return p.eachOn(ctx, p.snapshot(), len(tasks), eligible, bestEffort, fn)
}

// eachOn is the failover executor: each idle worker eligible for a queued
// task it has not yet tried is handed one; when a task fails with
// *WorkerDownError it is re-queued for a different worker, and a worker
// whose breaker trips is retired for the rest of the stage. Candidate
// workers for a task are ranked healthy-before-tripped, then by in-flight
// load, then by pool order, so routing prefers the least-loaded live
// replica deterministically. In strict mode any application error — or a
// task every eligible worker has failed — cancels the sibling calls and
// fails the stage. In bestEffort mode such tasks are skipped and reported in
// eachStats so the caller can degrade explicitly.
func (p *Pool) eachOn(ctx context.Context, ws []*workerState, n int, eligible func(task int, w *workerState) bool, bestEffort bool, fn func(ctx context.Context, w *workerState, task int) error) (eachStats, error) {
	var es eachStats
	if n == 0 {
		return es, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		wi, task int
		err      error
	}
	// Buffered so a finishing worker goroutine never blocks on a departed
	// dispatcher: at most one result per worker is in flight.
	results := make(chan result, len(ws))
	tried := make([]map[int]bool, n)
	queue := make([]int, n)
	for i := range queue {
		tried[i] = map[int]bool{}
		queue[i] = i
	}
	idle := make([]int, 0, len(ws))
	for wi := range ws {
		idle = append(idle, wi)
	}
	inflight := 0
	pending := n

	// pick returns the position in idle of the best worker for task, or -1:
	// untripped before tripped, lighter in-flight load first, pool order as
	// the deterministic tiebreak.
	pick := func(task int) int {
		best, bestTripped, bestLoad := -1, false, int64(0)
		for ii, wi := range idle {
			w := ws[wi]
			if tried[task][wi] || (eligible != nil && !eligible(task, w)) {
				continue
			}
			trip := w.tripped(p.policy)
			load := w.inflight.Load()
			if best == -1 || (bestTripped && !trip) || (bestTripped == trip && load < bestLoad) {
				best, bestTripped, bestLoad = ii, trip, load
			}
		}
		return best
	}

	// dispatch pairs queued tasks with idle eligible workers, launching one
	// goroutine per pairing.
	dispatch := func() {
		for {
			launched := false
			for qi := 0; qi < len(queue) && !launched; qi++ {
				task := queue[qi]
				ii := pick(task)
				if ii < 0 {
					continue
				}
				wi := idle[ii]
				queue = append(queue[:qi], queue[qi+1:]...)
				idle = append(idle[:ii], idle[ii+1:]...)
				inflight++
				go func(wi, task int) {
					results <- result{wi: wi, task: task, err: fn(ctx, ws[wi], task)}
				}(wi, task)
				launched = true
			}
			if !launched {
				return
			}
		}
	}

	var abortErr error
	for pending > 0 && abortErr == nil {
		dispatch()
		if inflight == 0 {
			// Every remaining task has been tried on (or has lost) every
			// eligible worker.
			if bestEffort {
				es.skipped = append(es.skipped, queue...)
				pending -= len(queue)
				queue = nil
				continue
			}
			abortErr = errors.Join(append(es.errs,
				fmt.Errorf("rpc: %d tasks have no eligible worker left", len(queue)))...)
			break
		}
		var r result
		select {
		case r = <-results:
		case <-ctx.Done():
			// The caller gave up: fail the stage now instead of waiting on
			// a task fn that may not honor cancellation. In-flight results
			// land in the buffered channel and are drained below.
			abortErr = ctx.Err()
			continue
		}
		inflight--
		var down *WorkerDownError
		switch {
		case r.err == nil:
			pending--
			idle = append(idle, r.wi)
		case errors.As(r.err, &down):
			es.errs = append(es.errs, fmt.Errorf("task %d: %w", r.task, r.err))
			es.reassigned++
			mTasksReassigned.Inc()
			tried[r.task][r.wi] = true
			queue = append(queue, r.task)
			if !ws[r.wi].tripped(p.policy) {
				// A machine-local fault, not a dead worker: it stays
				// eligible for other tasks.
				idle = append(idle, r.wi)
			}
		case bestEffort && ctx.Err() == nil:
			es.errs = append(es.errs, fmt.Errorf("task %d: %w", r.task, r.err))
			es.skipped = append(es.skipped, r.task)
			pending--
			idle = append(idle, r.wi)
		default:
			abortErr = fmt.Errorf("rpc: task %d on worker %s: %w", r.task, ws[r.wi].addr, r.err)
		}
	}
	// Cancel siblings and drain before returning so no task goroutine
	// outlives the stage.
	cancel()
	for inflight > 0 {
		<-results //tardislint:ignore ctxflow post-cancel drain; every in-flight fn saw cancel() and sends into a buffered channel
		inflight--
	}
	if abortErr != nil {
		return es, abortErr
	}
	mTasksSkipped.Add(int64(len(es.skipped)))
	sort.Ints(es.skipped)
	return es, nil
}

// stageCtx applies the policy's per-stage deadline, if any.
func (p *Pool) stageCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.policy.StageTimeout > 0 {
		return context.WithTimeout(ctx, p.policy.StageTimeout)
	}
	return context.WithCancel(ctx)
}

// PingStatus is one worker's answer to Ping.
type PingStatus struct {
	Addr  string
	Reply PingReply
	Err   error
}

// Ping probes every worker and reports per-worker status. The error joins
// every failed worker's error; statuses are returned even when some workers
// fail, so callers can render partial health.
func (p *Pool) Ping(ctx context.Context) ([]PingStatus, error) {
	statuses := make([]PingStatus, p.Size())
	err := p.scatter(ctx, func(ctx context.Context, wi int, w *workerState) error {
		if wi >= len(statuses) {
			return nil // membership grew between Size and scatter's snapshot
		}
		statuses[wi].Addr = w.addr
		statuses[wi].Err = p.callWorker(ctx, w, "Worker.Ping", PingArgs{}, &statuses[wi].Reply)
		return statuses[wi].Err
	})
	return statuses, err
}

// StatsStatus is one worker's answer to Stats.
type StatsStatus struct {
	Addr  string
	Reply StatsReply
	Err   error
}

// Stats gathers each worker's task counters, reporting per-worker status
// like Ping.
func (p *Pool) Stats(ctx context.Context) ([]StatsStatus, error) {
	statuses := make([]StatsStatus, p.Size())
	err := p.scatter(ctx, func(ctx context.Context, wi int, w *workerState) error {
		if wi >= len(statuses) {
			return nil
		}
		statuses[wi].Addr = w.addr
		statuses[wi].Err = p.callWorker(ctx, w, "Worker.Stats", StatsArgs{}, &statuses[wi].Reply)
		return statuses[wi].Err
	})
	return statuses, err
}
