package rpc

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/rpc"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/storage"
)

// Serve registers a Worker service on the listener and serves connections
// until the listener is closed, then drains in-flight connections before
// returning. Each worker process calls this once.
func Serve(ln net.Listener, workerID string) error {
	srv := rpc.NewServer()
	if err := srv.Register(&Worker{ID: workerID}); err != nil {
		return err
	}
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeConn(conn)
		}()
	}
}

// chunk splits items round-robin across n buckets.
func chunk(items []int, n int) [][]int {
	out := make([][]int, n)
	for i, it := range items {
		out[i%n] = append(out[i%n], it)
	}
	return out
}

// BuildStats summarizes a distributed build.
type BuildStats struct {
	SampledRecords int64
	Records        int64
	Partitions     int
	SampleConvert  time.Duration
	GlobalStages   core.GlobalBreakdown
	Shuffle        time.Duration
	LocalBuild     time.Duration
	Total          time.Duration
	// Reassigned counts task chunks rerouted to a surviving worker after a
	// worker failure (all stages combined). Zero on a fault-free build.
	Reassigned int
	// Replicate is the wall time of the replication fan-out (zero when the
	// build ran unreplicated); MapVersion is the PartitionMap version written
	// (zero when none was).
	Replicate  time.Duration
	MapVersion uint64
}

// BuildOptions tunes BuildDistributedOpts beyond the core configuration.
type BuildOptions struct {
	// Replication is the number of copies of each partition (R). Values
	// below 2 build the canonical store only — no replica stores, no
	// PartitionMap — which is BuildDistributed's behavior. R is capped at
	// the pool size.
	Replication int
}

// BuildDistributed runs the full TARDIS build across the worker pool:
// sampling and conversion on workers, global-index construction on the
// coordinator, broadcast of the serialized global tree, spill-based shuffle,
// and local-index construction — then writes the descriptor so the result
// loads with core.Load. workDir holds the spill stores; dstDir receives the
// clustered store.
//
// Fault tolerance: task chunks are keyed by chunk index — not by worker — so
// when a worker dies mid-stage its chunks are re-executed on survivors
// (worker RPCs rewrite their outputs idempotently) and the result is
// byte-identical to a fault-free build. Each stage runs under the pool
// policy's stage deadline; a failed stage cancels its sibling in-flight
// calls. The build never silently drops records: a chunk no live worker can
// run fails the build.
func BuildDistributed(ctx context.Context, pool *Pool, srcDir, dstDir, workDir string, cfg core.Config) (BuildStats, error) {
	return BuildDistributedOpts(ctx, pool, srcDir, dstDir, workDir, cfg, BuildOptions{})
}

// BuildDistributedOpts is BuildDistributed with replication: when
// opts.Replication ≥ 2 a final stage copies every partition (data + local
// index) into R per-owner replica stores placed by rendezvous hashing, and a
// version-1 PartitionMap recording the placement and per-partition content
// checksums is written alongside the index. Queries then route each
// partition to its replicas and survive any single worker's loss at R ≥ 2.
func BuildDistributedOpts(ctx context.Context, pool *Pool, srcDir, dstDir, workDir string, cfg core.Config, opts BuildOptions) (BuildStats, error) {
	var bs BuildStats
	if err := cfg.Validate(); err != nil {
		return bs, err
	}
	start := time.Now()
	src, err := storage.Open(srcDir)
	if err != nil {
		return bs, err
	}

	// Stage 1: sample + convert on workers.
	stage := time.Now()
	sampled, err := src.SampledPartitions(cfg.SamplePct, cfg.SampleSeed)
	if err != nil {
		return bs, err
	}
	sampleChunks := chunk(sampled, pool.Size())
	sampleReplies := make([]SampleConvertReply, len(sampleChunks))
	sctx, cancel := pool.stageCtx(ctx)
	es, err := pool.each(sctx, len(sampleChunks), false, func(ctx context.Context, w *workerState, task int) error {
		if len(sampleChunks[task]) == 0 {
			return nil
		}
		return pool.callWorker(ctx, w, "Worker.SampleConvert", SampleConvertArgs{
			StoreDir: srcDir, PIDs: sampleChunks[task],
			WordLen: cfg.WordLen, Bits: cfg.InitialBits,
		}, &sampleReplies[task])
	})
	cancel()
	bs.Reassigned += es.reassigned
	if err != nil {
		return bs, fmt.Errorf("rpc: sample/convert stage: %w", err)
	}
	base := map[isaxt.Signature]int64{}
	for _, r := range sampleReplies {
		for sig, n := range r.Freq {
			base[isaxt.Signature(sig)] += n
		}
		bs.SampledRecords += r.Records
	}
	bs.SampleConvert = time.Since(stage)
	mBuildStageDuration.With("sample-convert").Observe(bs.SampleConvert.Seconds())

	// Stages 2-4 on the coordinator.
	codec, err := isaxt.NewCodec(cfg.WordLen)
	if err != nil {
		return bs, err
	}
	tree, partitions, breakdown, err := core.BuildGlobalFromSample(codec, cfg, base)
	if err != nil {
		return bs, err
	}
	bs.GlobalStages = breakdown
	bs.Partitions = partitions

	// Broadcast: serialize the global tree once, presized from its
	// serialized-size estimate.
	treeBytes := bytes.NewBuffer(make([]byte, 0, tree.SerializedSize()))
	if _, err := tree.WriteTo(treeBytes); err != nil {
		return bs, err
	}

	// Stage 5: spill shuffle on workers. Spill stores are keyed by chunk
	// index, so a reassigned chunk lands in the same directory no matter
	// which worker runs it.
	stage = time.Now()
	allPIDs, err := src.Partitions()
	if err != nil {
		return bs, err
	}
	srcChunks := chunk(allPIDs, pool.Size())
	spillDirs := make([]string, len(srcChunks))
	for i := range spillDirs {
		spillDirs[i] = filepath.Join(workDir, fmt.Sprintf("spill-c%03d", i))
	}
	spillReplies := make([]SpillReply, len(srcChunks))
	sctx, cancel = pool.stageCtx(ctx)
	es, err = pool.each(sctx, len(srcChunks), false, func(ctx context.Context, w *workerState, task int) error {
		return pool.callWorker(ctx, w, "Worker.Spill", SpillArgs{
			SrcDir: srcDir, SrcPIDs: srcChunks[task], GlobalTree: treeBytes.Bytes(),
			WordLen: cfg.WordLen, Bits: cfg.InitialBits, SpillDir: spillDirs[task],
		}, &spillReplies[task])
	})
	cancel()
	bs.Reassigned += es.reassigned
	if err != nil {
		return bs, fmt.Errorf("rpc: spill stage: %w", err)
	}
	bs.Shuffle = time.Since(stage)
	mBuildStageDuration.With("spill-shuffle").Observe(bs.Shuffle.Seconds())

	// Stage 6: local index construction on workers.
	stage = time.Now()
	if _, err := storage.CreateCompressed(dstDir, src.SeriesLen(), cfg.Compression); err != nil {
		return bs, err
	}
	targets := make([]int, partitions)
	for i := range targets {
		targets[i] = i
	}
	targetChunks := chunk(targets, pool.Size())
	buildReplies := make([]BuildLocalsReply, len(targetChunks))
	sctx, cancel = pool.stageCtx(ctx)
	es, err = pool.each(sctx, len(targetChunks), false, func(ctx context.Context, w *workerState, task int) error {
		if len(targetChunks[task]) == 0 {
			return nil
		}
		return pool.callWorker(ctx, w, "Worker.BuildLocals", BuildLocalsArgs{
			SpillDirs: spillDirs, DstDir: dstDir, PIDs: targetChunks[task],
			WordLen: cfg.WordLen, Bits: cfg.InitialBits, LMaxSize: cfg.LMaxSize,
			BuildBloom: cfg.BuildBloom, BloomFP: cfg.BloomFP,
		}, &buildReplies[task])
	})
	cancel()
	bs.Reassigned += es.reassigned
	if err != nil {
		return bs, fmt.Errorf("rpc: local build stage: %w", err)
	}
	checksums := map[int]uint32{}
	for _, r := range buildReplies {
		for _, n := range r.Counts {
			bs.Records += n
		}
		for pid, sum := range r.Checksums {
			checksums[pid] = sum
		}
	}
	bs.LocalBuild = time.Since(stage)
	mBuildStageDuration.With("local-build").Observe(bs.LocalBuild.Seconds())

	// Finalize: manifest (with the content checksums the workers reported),
	// global tree, descriptor.
	dst, err := storage.Open(dstDir)
	if err != nil {
		return bs, err
	}
	for pid, sum := range checksums {
		dst.SetChecksum(pid, sum)
	}
	if err := dst.Sync(); err != nil {
		return bs, err
	}
	if err := core.WriteGlobalTree(dstDir, tree); err != nil {
		return bs, err
	}
	bs.Total = time.Since(start)
	coreStats := core.BuildStats{
		SampleConvert:      bs.SampleConvert,
		NodeStatistics:     breakdown.NodeStatistics,
		SkeletonBuild:      breakdown.SkeletonBuild,
		PartitionAssign:    breakdown.PartitionAssign,
		GlobalTotal:        bs.SampleConvert + breakdown.NodeStatistics + breakdown.SkeletonBuild + breakdown.PartitionAssign,
		ShuffleReadConvert: bs.Shuffle,
		LocalConstruct:     bs.LocalBuild,
		LocalTotal:         bs.Shuffle + bs.LocalBuild,
		Total:              bs.Total,
		SampledBlocks:      len(sampled),
		SampledRecords:     bs.SampledRecords,
		Records:            bs.Records,
		Partitions:         partitions,
	}
	if err := core.WriteDescriptor(dstDir, cfg, src.SeriesLen(), partitions, coreStats); err != nil {
		return bs, err
	}

	// Stage 7: replication. Place every partition on R owners by rendezvous
	// hashing, fan one Replicate task per owner out across the pool (replica
	// stores live on the shared filesystem, so any surviving worker can
	// produce a dead owner's copy), verify the copied checksums against the
	// canonical ones, and persist the version-1 PartitionMap.
	if opts.Replication >= 2 {
		stage = time.Now()
		pm := NewPartitionMap(pool.Addrs(), targets, opts.Replication, 1)
		for i := range pm.Entries {
			pm.Entries[i].Checksum = checksums[pm.Entries[i].PID]
		}
		perOwner := map[string][]int{}
		for _, e := range pm.Entries {
			for _, a := range e.Replicas {
				perOwner[a] = append(perOwner[a], e.PID)
			}
		}
		owners := make([]string, 0, len(perOwner))
		for a := range perOwner {
			owners = append(owners, a)
		}
		sort.Strings(owners)
		replReplies := make([]ReplicateReply, len(owners))
		sctx, cancel = pool.stageCtx(ctx)
		es, err = pool.each(sctx, len(owners), false, func(ctx context.Context, w *workerState, task int) error {
			return pool.callWorker(ctx, w, "Worker.Replicate", ReplicateArgs{
				SrcDir: dstDir, DstDir: ReplicaDir(dstDir, owners[task]), PIDs: perOwner[owners[task]],
			}, &replReplies[task])
		})
		cancel()
		bs.Reassigned += es.reassigned
		if err != nil {
			return bs, fmt.Errorf("rpc: replication stage: %w", err)
		}
		for task, r := range replReplies {
			for pid, sum := range r.Checksums {
				if want := checksums[pid]; sum != want {
					return bs, fmt.Errorf("rpc: replica of partition %d on %s has checksum %08x, canonical %08x",
						pid, owners[task], sum, want)
				}
			}
		}
		if err := pm.Save(dstDir); err != nil {
			return bs, err
		}
		bs.MapVersion = pm.Version
		bs.Replicate = time.Since(stage)
		mBuildStageDuration.With("replicate").Observe(bs.Replicate.Seconds())
	}
	return bs, nil
}
