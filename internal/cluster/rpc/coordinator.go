package rpc

import (
	"fmt"
	"net"
	"net/rpc"
	"path/filepath"
	"sync"
	"time"

	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/storage"
)

// Serve registers a Worker service on the listener and serves connections
// until the listener is closed, then drains in-flight connections before
// returning. Each worker process calls this once.
func Serve(ln net.Listener, workerID string) error {
	srv := rpc.NewServer()
	if err := srv.Register(&Worker{ID: workerID}); err != nil {
		return err
	}
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeConn(conn)
		}()
	}
}

// Pool is a set of connected workers driven by the coordinator.
type Pool struct {
	addrs   []string
	clients []*rpc.Client
}

// Dial connects to the given worker addresses (host:port).
func Dial(addrs []string) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("rpc: no worker addresses")
	}
	p := &Pool{addrs: addrs}
	for _, addr := range addrs {
		c, err := rpc.Dial("tcp", addr)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("rpc: dialing worker %s: %w", addr, err)
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Close closes all worker connections.
func (p *Pool) Close() {
	for _, c := range p.clients {
		if c != nil {
			c.Close()
		}
	}
}

// Size returns the worker count.
func (p *Pool) Size() int { return len(p.clients) }

// Ping verifies every worker responds and returns their identities.
func (p *Pool) Ping() ([]PingReply, error) {
	replies := make([]PingReply, len(p.clients))
	for i, c := range p.clients {
		if err := c.Call("Worker.Ping", PingArgs{}, &replies[i]); err != nil {
			return nil, fmt.Errorf("rpc: worker %s: %w", p.addrs[i], err)
		}
	}
	return replies, nil
}

// Stats gathers each worker's accumulated task counters.
func (p *Pool) Stats() ([]StatsReply, error) {
	replies := make([]StatsReply, len(p.clients))
	for i, c := range p.clients {
		if err := c.Call("Worker.Stats", StatsArgs{}, &replies[i]); err != nil {
			return nil, fmt.Errorf("rpc: worker %s: %w", p.addrs[i], err)
		}
	}
	return replies, nil
}

// scatter runs fn(worker index) concurrently across the pool, returning the
// first error.
func (p *Pool) scatter(fn func(i int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(p.clients))
	for i := range p.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("rpc: worker %s: %w", p.addrs[i], err)
		}
	}
	return nil
}

// chunk splits items round-robin across n buckets.
func chunk(items []int, n int) [][]int {
	out := make([][]int, n)
	for i, it := range items {
		out[i%n] = append(out[i%n], it)
	}
	return out
}

// BuildStats summarizes a distributed build.
type BuildStats struct {
	SampledRecords int64
	Records        int64
	Partitions     int
	SampleConvert  time.Duration
	GlobalStages   core.GlobalBreakdown
	Shuffle        time.Duration
	LocalBuild     time.Duration
	Total          time.Duration
}

// BuildDistributed runs the full TARDIS build across the worker pool:
// sampling and conversion on workers, global-index construction on the
// coordinator, broadcast of the serialized global tree, spill-based shuffle,
// and local-index construction — then writes the descriptor so the result
// loads with core.Load. workDir holds the spill stores; dstDir receives the
// clustered store. It returns dstDir's path and build statistics.
func BuildDistributed(pool *Pool, srcDir, dstDir, workDir string, cfg core.Config) (BuildStats, error) {
	var bs BuildStats
	if err := cfg.Validate(); err != nil {
		return bs, err
	}
	start := time.Now()
	src, err := storage.Open(srcDir)
	if err != nil {
		return bs, err
	}

	// Stage 1: sample + convert on workers.
	stage := time.Now()
	sampled, err := src.SampledPartitions(cfg.SamplePct, cfg.SampleSeed)
	if err != nil {
		return bs, err
	}
	sampleChunks := chunk(sampled, pool.Size())
	sampleReplies := make([]SampleConvertReply, pool.Size())
	err = pool.scatter(func(i int) error {
		if len(sampleChunks[i]) == 0 {
			return nil
		}
		return pool.clients[i].Call("Worker.SampleConvert", SampleConvertArgs{
			StoreDir: srcDir, PIDs: sampleChunks[i],
			WordLen: cfg.WordLen, Bits: cfg.InitialBits,
		}, &sampleReplies[i])
	})
	if err != nil {
		return bs, err
	}
	base := map[isaxt.Signature]int64{}
	for _, r := range sampleReplies {
		for sig, n := range r.Freq {
			base[isaxt.Signature(sig)] += n
		}
		bs.SampledRecords += r.Records
	}
	bs.SampleConvert = time.Since(stage)

	// Stages 2-4 on the coordinator.
	codec, err := isaxt.NewCodec(cfg.WordLen)
	if err != nil {
		return bs, err
	}
	tree, partitions, breakdown, err := core.BuildGlobalFromSample(codec, cfg, base)
	if err != nil {
		return bs, err
	}
	bs.GlobalStages = breakdown
	bs.Partitions = partitions

	// Broadcast: serialize the global tree once.
	var treeBytes bytesBuffer
	if _, err := tree.WriteTo(&treeBytes); err != nil {
		return bs, err
	}

	// Stage 5: spill shuffle on workers.
	stage = time.Now()
	allPIDs, err := src.Partitions()
	if err != nil {
		return bs, err
	}
	srcChunks := chunk(allPIDs, pool.Size())
	spillDirs := make([]string, pool.Size())
	for i := range spillDirs {
		spillDirs[i] = filepath.Join(workDir, fmt.Sprintf("spill-w%d", i))
	}
	spillReplies := make([]SpillReply, pool.Size())
	err = pool.scatter(func(i int) error {
		return pool.clients[i].Call("Worker.Spill", SpillArgs{
			SrcDir: srcDir, SrcPIDs: srcChunks[i], GlobalTree: treeBytes.buf,
			WordLen: cfg.WordLen, Bits: cfg.InitialBits, SpillDir: spillDirs[i],
		}, &spillReplies[i])
	})
	if err != nil {
		return bs, err
	}
	bs.Shuffle = time.Since(stage)

	// Stage 6: local index construction on workers.
	stage = time.Now()
	if _, err := storage.CreateCompressed(dstDir, src.SeriesLen(), cfg.Compression); err != nil {
		return bs, err
	}
	targets := make([]int, partitions)
	for i := range targets {
		targets[i] = i
	}
	targetChunks := chunk(targets, pool.Size())
	buildReplies := make([]BuildLocalsReply, pool.Size())
	err = pool.scatter(func(i int) error {
		return pool.clients[i].Call("Worker.BuildLocals", BuildLocalsArgs{
			SpillDirs: spillDirs, DstDir: dstDir, PIDs: targetChunks[i],
			WordLen: cfg.WordLen, Bits: cfg.InitialBits, LMaxSize: cfg.LMaxSize,
			BuildBloom: cfg.BuildBloom, BloomFP: cfg.BloomFP,
		}, &buildReplies[i])
	})
	if err != nil {
		return bs, err
	}
	for _, r := range buildReplies {
		for _, n := range r.Counts {
			bs.Records += n
		}
	}
	bs.LocalBuild = time.Since(stage)

	// Finalize: manifest, global tree, descriptor.
	dst, err := storage.Open(dstDir)
	if err != nil {
		return bs, err
	}
	if err := dst.Sync(); err != nil {
		return bs, err
	}
	if err := core.WriteGlobalTree(dstDir, tree); err != nil {
		return bs, err
	}
	bs.Total = time.Since(start)
	coreStats := core.BuildStats{
		SampleConvert:      bs.SampleConvert,
		NodeStatistics:     breakdown.NodeStatistics,
		SkeletonBuild:      breakdown.SkeletonBuild,
		PartitionAssign:    breakdown.PartitionAssign,
		GlobalTotal:        bs.SampleConvert + breakdown.NodeStatistics + breakdown.SkeletonBuild + breakdown.PartitionAssign,
		ShuffleReadConvert: bs.Shuffle,
		LocalConstruct:     bs.LocalBuild,
		LocalTotal:         bs.Shuffle + bs.LocalBuild,
		Total:              bs.Total,
		SampledBlocks:      len(sampled),
		SampledRecords:     bs.SampledRecords,
		Records:            bs.Records,
		Partitions:         partitions,
	}
	if err := core.WriteDescriptor(dstDir, cfg, src.SeriesLen(), partitions, coreStats); err != nil {
		return bs, err
	}
	return bs, nil
}

// bytesBuffer is a minimal growable write buffer (avoids importing bytes for
// one use alongside the worker file's import).
type bytesBuffer struct{ buf []byte }

func (b *bytesBuffer) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
