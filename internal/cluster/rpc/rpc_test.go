package rpc

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
)

// startWorkers launches n in-process RPC workers on loopback ports and
// returns their addresses. The servers stop when the test ends.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		addrs[i] = ln.Addr().String()
		go Serve(ln, fmt.Sprintf("w%d", i))
	}
	return addrs
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Error("empty address list should fail")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}); err == nil {
		t.Error("unreachable worker should fail")
	}
}

func TestPing(t *testing.T) {
	addrs := startWorkers(t, 3)
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	statuses, err := pool.Ping(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 3 {
		t.Fatalf("statuses = %d", len(statuses))
	}
	seen := map[string]bool{}
	for _, r := range statuses {
		if r.Err != nil {
			t.Errorf("worker %s: %v", r.Addr, r.Err)
		}
		if r.Reply.ID == "" || r.Reply.PID == 0 {
			t.Errorf("bad reply %+v", r)
		}
		seen[r.Reply.ID] = true
	}
	if len(seen) != 3 {
		t.Errorf("worker ids not distinct: %v", seen)
	}
}

func TestStats(t *testing.T) {
	addrs := startWorkers(t, 2)
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()
	if _, err := pool.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err := pool.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats from %d workers, want 2", len(stats))
	}
	for _, s := range stats {
		if s.Err != nil {
			t.Errorf("worker %s: %v", s.Addr, s.Err)
		}
		if s.Reply.ID == "" {
			t.Errorf("stats reply missing worker ID: %+v", s)
		}
		if s.Reply.Tasks["Ping"] != 2 {
			t.Errorf("worker %s Ping count = %d, want 2", s.Reply.ID, s.Reply.Tasks["Ping"])
		}
		if s.Reply.Records != 0 {
			t.Errorf("worker %s records = %d before any data task", s.Reply.ID, s.Reply.Records)
		}
	}
}

// The end-to-end distributed build: generate a dataset, build over RPC
// workers, load with core.Load, and verify queries against an in-process
// build of the same dataset and configuration.
func TestBuildDistributedEndToEnd(t *testing.T) {
	const (
		seriesLen = 32
		n         = 3000
	)
	g, err := dataset.New(dataset.RandomWalk, seriesLen)
	if err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join(t.TempDir(), "src")
	src, err := dataset.WriteStore(g, 5, n, srcDir, 500, true)
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.GMaxSize = 400
	cfg.LMaxSize = 50
	cfg.SamplePct = 0.25

	addrs := startWorkers(t, 3)
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	dstDir := filepath.Join(t.TempDir(), "dst")
	workDir := t.TempDir()
	stats, err := BuildDistributed(context.Background(), pool, srcDir, dstDir, workDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != n {
		t.Errorf("distributed build routed %d records, want %d", stats.Records, n)
	}
	if stats.Partitions < 2 {
		t.Errorf("partitions = %d", stats.Partitions)
	}
	if stats.SampledRecords == 0 {
		t.Error("no sampled records")
	}

	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Load(cl, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	total, err := ix.Store.TotalRecords()
	if err != nil || total != n {
		t.Fatalf("clustered store holds %d records (%v)", total, err)
	}

	// Every probed record is findable through the loaded distributed index.
	recs, err := src.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		rec := recs[i*19%len(recs)]
		rids, _, err := ix.ExactMatch(rec.Values, true)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, rid := range rids {
			if rid == rec.RID {
				found = true
			}
		}
		if !found {
			t.Fatalf("record %d missing from distributed index", rec.RID)
		}
	}

	// The distributed build must agree with the in-process build: same
	// partition count and identical kNN answers (both are deterministic
	// functions of the data and config).
	localIx, err := core.Build(cl, src, filepath.Join(t.TempDir(), "local"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if localIx.NumPartitions() != ix.NumPartitions() {
		t.Errorf("partition count differs: rpc=%d local=%d", ix.NumPartitions(), localIx.NumPartitions())
	}
	q := dataset.Record(g, 5, 1234).Values.ZNormalize()
	a, _, err := ix.KNNMultiPartition(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := localIx.KNNMultiPartition(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].RID != b[i].RID || a[i].Dist != b[i].Dist {
			t.Fatalf("result %d differs: rpc=%+v local=%+v", i, a[i], b[i])
		}
	}
}

func TestBuildDistributedValidation(t *testing.T) {
	addrs := startWorkers(t, 1)
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	bad := core.DefaultConfig()
	bad.WordLen = 5
	if _, err := BuildDistributed(context.Background(), pool, t.TempDir(), t.TempDir(), t.TempDir(), bad); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := BuildDistributed(context.Background(), pool, t.TempDir(), t.TempDir(), t.TempDir(), core.DefaultConfig()); err == nil {
		t.Error("missing source store should fail")
	}
}

// Distributed kNN over RPC workers agrees with the in-process index on the
// same data (distances identical; the distributed threshold seeding is at
// least as tight, so the result sets match exactly).
func TestDistKNN(t *testing.T) {
	const (
		seriesLen = 32
		n         = 3000
	)
	g, err := dataset.New(dataset.RandomWalk, seriesLen)
	if err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join(t.TempDir(), "src")
	if _, err := dataset.WriteStore(g, 5, n, srcDir, 500, true); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.GMaxSize = 400
	cfg.LMaxSize = 40
	cfg.SamplePct = 0.25

	addrs := startWorkers(t, 3)
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dstDir := filepath.Join(t.TempDir(), "dst")
	if _, err := BuildDistributed(context.Background(), pool, srcDir, dstDir, t.TempDir(), cfg); err != nil {
		t.Fatal(err)
	}

	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	localIx, err := core.Load(cl, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := int64(0); i < 5; i++ {
		q := dataset.Record(g, 5, 100+i).Values.ZNormalize()
		const k = 8
		dist, st, err := DistKNN(ctx, pool, dstDir, cfg, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if st.Degraded || st.PartitionsSkipped != 0 {
			t.Fatalf("query %d degraded with healthy workers: %+v", i, st)
		}
		local, _, err := localIx.KNNMultiPartition(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(dist) != len(local) {
			t.Fatalf("query %d: %d vs %d results", i, len(dist), len(local))
		}
		for j := range local {
			if dist[j].RID != local[j].RID || dist[j].Dist != local[j].Dist {
				t.Fatalf("query %d result %d: rpc %+v vs local %+v", i, j, dist[j], local[j])
			}
		}
	}
	// Self query across the wire.
	q := dataset.Record(g, 5, 7).Values.ZNormalize()
	res, _, err := DistKNN(ctx, pool, dstDir, cfg, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].RID != 7 || res[0].Dist != 0 {
		t.Fatalf("distributed self query wrong: %+v", res[0])
	}
	// Validation.
	if _, _, err := DistKNN(ctx, pool, dstDir, cfg, q, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := DistKNN(ctx, pool, t.TempDir(), cfg, q, 3); err == nil {
		t.Error("missing index dir should fail")
	}
}

// Distributed exact kNN and range queries agree with the in-process exact
// implementations — both are guaranteed-correct, so the answers must be
// identical, not merely equivalent.
func TestDistExactAndRange(t *testing.T) {
	const (
		seriesLen = 32
		n         = 2000
	)
	g, err := dataset.New(dataset.RandomWalk, seriesLen)
	if err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join(t.TempDir(), "src")
	if _, err := dataset.WriteStore(g, 5, n, srcDir, 500, true); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.GMaxSize = 300
	cfg.LMaxSize = 40
	cfg.SamplePct = 0.25

	addrs := startWorkers(t, 3)
	pool, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dstDir := filepath.Join(t.TempDir(), "dst")
	ctx := context.Background()
	if _, err := BuildDistributed(ctx, pool, srcDir, dstDir, t.TempDir(), cfg); err != nil {
		t.Fatal(err)
	}

	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	localIx, err := core.Load(cl, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		q := dataset.Record(g, 5, 300+i).Values.ZNormalize()
		const k = 6
		dist, st, err := DistKNNExact(ctx, pool, dstDir, cfg, q, k)
		if err != nil {
			t.Fatal(err)
		}
		if st.Degraded {
			t.Fatal("exact query must never report Degraded")
		}
		local, _, err := localIx.KNNExact(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(dist) != len(local) {
			t.Fatalf("query %d: %d vs %d results", i, len(dist), len(local))
		}
		for j := range local {
			if dist[j].RID != local[j].RID || dist[j].Dist != local[j].Dist {
				t.Fatalf("query %d result %d: rpc %+v vs local %+v", i, j, dist[j], local[j])
			}
		}

		// Range with the exact 3rd-neighbor distance as radius: the answer
		// must include at least those 3 records and match the local result.
		eps := local[2].Dist
		rHits, _, err := DistRange(ctx, pool, dstDir, cfg, q, eps)
		if err != nil {
			t.Fatal(err)
		}
		lHits, _, err := localIx.RangeQuery(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(rHits) != len(lHits) {
			t.Fatalf("query %d range: %d vs %d hits", i, len(rHits), len(lHits))
		}
		for j := range lHits {
			if rHits[j].RID != lHits[j].RID || rHits[j].Dist != lHits[j].Dist {
				t.Fatalf("query %d range hit %d: rpc %+v vs local %+v", i, j, rHits[j], lHits[j])
			}
		}
	}
	// Validation.
	q := dataset.Record(g, 5, 1).Values.ZNormalize()
	if _, _, err := DistKNNExact(ctx, pool, dstDir, cfg, q, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, _, err := DistRange(ctx, pool, dstDir, cfg, q, -1); err == nil {
		t.Error("negative radius should fail")
	}
}
