package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/faultinj"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/raftlite"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// Replication fault matrix (ISSUE 9): killed workers, corrupted replicas, and
// coordinator leader loss must never change an exact answer at R>=2, and the
// anti-entropy loop must converge back to full replication without a rebuild.

// killWorkerRules makes every connection byte to/from the labeled worker drop
// the connection — the deterministic stand-in for "kill -9 the process".
// Requires workers started with startFaultWorkers (wrapped listeners).
func killWorkerRules(label string) []faultinj.Rule {
	return []faultinj.Rule{
		{Point: faultinj.PointConnRead, Label: label, Kind: faultinj.KindDrop},
		{Point: faultinj.PointConnWrite, Label: label, Kind: faultinj.KindDrop},
	}
}

// exactBaseline answers the query with the in-process exact search over the
// canonical store — the ground truth every distributed run must match.
func exactBaseline(t *testing.T, dstDir string, q ts.Series, k int) []knn.Neighbor {
	t.Helper()
	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Load(cl, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := ix.KNNExact(q, k)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

func assertSameNeighbors(t *testing.T, tag string, got, want []knn.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i].RID != want[i].RID || got[i].Dist != want[i].Dist {
			t.Fatalf("%s: result %d is %+v, want %+v", tag, i, got[i], want[i])
		}
	}
}

// verifyReplicaChecksums opens every replica store named by the map and
// recomputes every owned partition's content checksum from the bytes on disk.
func verifyReplicaChecksums(t *testing.T, dstDir string, m *PartitionMap) {
	t.Helper()
	for _, e := range m.Entries {
		for _, addr := range e.Replicas {
			st, err := storage.Open(ReplicaDir(dstDir, addr))
			if err != nil {
				t.Fatalf("replica store for %s missing: %v", addr, err)
			}
			sum, err := st.VerifyPartitionChecksum(e.PID)
			if err != nil {
				t.Fatalf("replica of p%d on %s unreadable: %v", e.PID, addr, err)
			}
			if sum != e.Checksum {
				t.Fatalf("replica of p%d on %s has checksum %08x, map says %08x", e.PID, addr, sum, e.Checksum)
			}
		}
	}
}

// The acceptance scenario: at R=2 over three workers, killing any single
// worker mid-exact-kNN must yield the bit-exact answer with no degradation,
// and one anti-entropy pass afterwards must restore full replication —
// verified by on-disk checksum agreement — without rebuilding the index.
func TestFaultInjectionReplicatedExactKNN(t *testing.T) {
	const n = 2000
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startFaultWorkers(t, 3)
	ctx := context.Background()
	pool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	dstDir := filepath.Join(t.TempDir(), "dst")
	stats, err := BuildDistributedOpts(ctx, pool, srcDir, dstDir, t.TempDir(), cfg, BuildOptions{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MapVersion != 1 {
		t.Fatalf("replicated build wrote map v%d, want v1", stats.MapVersion)
	}
	m, err := LoadPartitionMap(dstDir)
	if err != nil || m == nil {
		t.Fatalf("partition map missing after replicated build: %v", err)
	}
	if m.Replication != 2 {
		t.Fatalf("map replication %d, want 2", m.Replication)
	}
	for _, e := range m.Entries {
		if len(e.Replicas) != 2 {
			t.Fatalf("p%d has %d replicas, want 2", e.PID, len(e.Replicas))
		}
		if e.Checksum == 0 {
			t.Fatalf("p%d has no canonical checksum in the map", e.PID)
		}
	}
	verifyReplicaChecksums(t, dstDir, m)

	const k = 5
	q := dataset.Record(g, 5, 42).Values.ZNormalize()
	want := exactBaseline(t, dstDir, q, k)

	victim := addrs[1]
	victimOwned := 0
	for _, e := range m.Entries {
		for _, a := range e.Replicas {
			if a == victim {
				victimOwned++
			}
		}
	}

	sched := faultinj.NewSchedule(killWorkerRules("w1")...)
	faultinj.Enable(sched)
	t.Cleanup(faultinj.Disable)

	got, st, err := DistKNNExact(ctx, pool, dstDir, cfg, q, k)
	if err != nil {
		t.Fatalf("exact query failed with one dead worker at R=2: %v", err)
	}
	if st.Degraded || st.PartitionsSkipped != 0 {
		t.Fatalf("exact query degraded at R=2: %+v", st)
	}
	assertSameNeighbors(t, "killed-worker exact", got, want)

	// Least-loaded routing may have satisfied every task from the other owner
	// without ever dialing the victim, so prove the kill is in effect directly:
	// a ping to the victim must die on its dropped connection.
	var pr PingReply
	if err := pool.callWorker(ctx, pool.worker(victim), "Worker.Ping", PingArgs{}, &pr); err == nil {
		t.Fatal("victim still answers pings; kill rules not in effect")
	}
	if len(sched.Events()) == 0 {
		t.Fatal("kill schedule never fired; the victim was never dialed")
	}

	// Anti-entropy while the victim is still down: its partitions move to the
	// survivors, the map version steps forward, and every replica named by the
	// new map agrees with the canonical checksum. No rebuild involved.
	rep := &Repairer{Pool: pool, StoreDir: dstDir, Logf: t.Logf}
	rs, err := rep.RunOnce(ctx)
	if err != nil {
		t.Fatalf("repair pass failed: %v", err)
	}
	if rs.Unrepaired != 0 {
		t.Fatalf("%d partitions still under-replicated after repair", rs.Unrepaired)
	}
	if victimOwned > 0 {
		if !rs.Rebalanced || rs.MapVersion != 2 {
			t.Fatalf("repair did not rebalance away from the dead worker: %+v", rs)
		}
		if rs.Repaired < victimOwned {
			t.Fatalf("repaired %d replicas, dead worker owned %d", rs.Repaired, victimOwned)
		}
	}
	m2, err := LoadPartitionMap(dstDir)
	if err != nil || m2 == nil {
		t.Fatalf("partition map unreadable after repair: %v", err)
	}
	if m2.Version < m.Version {
		t.Fatalf("map version moved backwards: %d -> %d", m.Version, m2.Version)
	}
	for _, e := range m2.Entries {
		if len(e.Replicas) != 2 {
			t.Fatalf("p%d has %d replicas after repair, want 2", e.PID, len(e.Replicas))
		}
		for _, a := range e.Replicas {
			if a == victim {
				t.Fatalf("p%d still placed on the dead worker after repair", e.PID)
			}
		}
	}
	faultinj.Disable()
	verifyReplicaChecksums(t, dstDir, m2)

	// With the new placement the same query is exact again, dead worker or not.
	got2, st2, err := DistKNNExact(ctx, pool, dstDir, cfg, q, k)
	if err != nil || st2.Degraded {
		t.Fatalf("post-repair exact query: %v (degraded=%v)", err, st2.Degraded)
	}
	assertSameNeighbors(t, "post-repair exact", got2, want)
}

// A worker killed before the build still yields a fully replicated index:
// replica fan-out tasks are not pinned to their owner (shared filesystem), so
// a survivor writes the dead owner's replica store and queries fail over.
func TestFaultInjectionReplicatedBuildWorkerKill(t *testing.T) {
	const n = 1500
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startFaultWorkers(t, 3)
	ctx := context.Background()
	pool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	sched := faultinj.NewSchedule(killWorkerRules("w2")...)
	faultinj.Enable(sched)
	t.Cleanup(faultinj.Disable)

	dstDir := filepath.Join(t.TempDir(), "dst")
	stats, err := BuildDistributedOpts(ctx, pool, srcDir, dstDir, t.TempDir(), cfg, BuildOptions{Replication: 2})
	if err != nil {
		t.Fatalf("replicated build with a dead worker failed: %v", err)
	}
	if stats.Records != n {
		t.Fatalf("build routed %d records, want %d", stats.Records, n)
	}
	if stats.MapVersion != 1 {
		t.Fatalf("map v%d after build, want v1", stats.MapVersion)
	}
	m, err := LoadPartitionMap(dstDir)
	if err != nil || m == nil {
		t.Fatalf("partition map missing: %v", err)
	}
	verifyReplicaChecksums(t, dstDir, m)

	const k = 5
	q := dataset.Record(g, 5, 7).Values.ZNormalize()
	got, st, err := DistKNNExact(ctx, pool, dstDir, cfg, q, k)
	if err != nil || st.Degraded || st.PartitionsSkipped != 0 {
		t.Fatalf("exact query after degraded build: %v (stats %+v)", err, st)
	}
	faultinj.Disable()
	assertSameNeighbors(t, "build-kill exact", got, exactBaseline(t, dstDir, q, k))
}

// The replication matrix: exactness must survive killing each worker in turn
// at R=2, and a replicated store must keep answering exactly even when every
// canonical partition file is gone — the replica stores are self-contained.
// The unreplicated control row shows worker loss is survivable there only
// because workers share the canonical store.
func TestFaultInjectionReplicationMatrix(t *testing.T) {
	const n = 1500
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startFaultWorkers(t, 3)
	ctx := context.Background()
	buildPool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	replDir := filepath.Join(t.TempDir(), "repl")
	if _, err := BuildDistributedOpts(ctx, buildPool, srcDir, replDir, t.TempDir(), cfg, BuildOptions{Replication: 2}); err != nil {
		t.Fatal(err)
	}
	plainDir := filepath.Join(t.TempDir(), "plain")
	if _, err := BuildDistributed(ctx, buildPool, srcDir, plainDir, t.TempDir(), cfg); err != nil {
		t.Fatal(err)
	}
	buildPool.Close()

	const k = 5
	queries := make([]ts.Series, 3)
	for i := range queries {
		queries[i] = dataset.Record(g, 5, 300+int64(i)).Values.ZNormalize()
	}
	wantRepl := make([][]knn.Neighbor, len(queries))
	wantPlain := make([][]knn.Neighbor, len(queries))
	for i, q := range queries {
		wantRepl[i] = exactBaseline(t, replDir, q, k)
		wantPlain[i] = exactBaseline(t, plainDir, q, k)
	}

	runRow := func(t *testing.T, dstDir string, want [][]knn.Neighbor, rules ...faultinj.Rule) {
		t.Helper()
		pool, err := DialContext(ctx, addrs, faultPolicy())
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		if len(rules) > 0 {
			faultinj.Enable(faultinj.NewSchedule(rules...))
			defer faultinj.Disable()
		}
		for i, q := range queries {
			got, st, err := DistKNNExact(ctx, pool, dstDir, cfg, q, k)
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			if st.Degraded || st.PartitionsSkipped != 0 {
				t.Fatalf("query %d degraded: %+v", i, st)
			}
			assertSameNeighbors(t, fmt.Sprintf("query %d", i), got, want[i])
		}
	}

	for wi := 0; wi < 3; wi++ {
		t.Run(fmt.Sprintf("r2-kill-w%d", wi), func(t *testing.T) {
			runRow(t, replDir, wantRepl, killWorkerRules(fmt.Sprintf("w%d", wi))...)
		})
	}
	t.Run("r1-kill-w0", func(t *testing.T) {
		runRow(t, plainDir, wantPlain, killWorkerRules("w0")...)
	})
	// Destructive, so last: remove every canonical partition file. Owners
	// read their replica stores, so the replicated index still answers
	// exactly; this is the loss that degraded the unreplicated store in
	// TestFaultInjectionDegradedApprox.
	t.Run("r2-canonical-partitions-gone", func(t *testing.T) {
		parts, err := filepath.Glob(filepath.Join(replDir, "part-*.bin"))
		if err != nil || len(parts) == 0 {
			t.Fatalf("no canonical partitions found: %v", err)
		}
		for _, p := range parts {
			if err := os.Remove(p); err != nil {
				t.Fatal(err)
			}
		}
		runRow(t, replDir, wantRepl)
	})
}

// A bit-flipped replica must be detected by the checksum on read, quarantined,
// failed over, and then re-replicated from the surviving copy by one repair
// pass — with the placement (and map version) unchanged.
func TestFaultInjectionCorruptReplica(t *testing.T) {
	const n = 1200
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startWorkers(t, 3)
	ctx := context.Background()
	pool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dstDir := filepath.Join(t.TempDir(), "dst")
	if _, err := BuildDistributedOpts(ctx, pool, srcDir, dstDir, t.TempDir(), cfg, BuildOptions{Replication: 2}); err != nil {
		t.Fatal(err)
	}
	m, err := LoadPartitionMap(dstDir)
	if err != nil || m == nil {
		t.Fatalf("partition map missing: %v", err)
	}
	entry := m.Entries[0]
	owner := entry.Replicas[0]
	partFile := filepath.Join(ReplicaDir(dstDir, owner), fmt.Sprintf("part-%06d.bin", entry.PID))

	sched := faultinj.NewSchedule(faultinj.Rule{
		Point: "storage.corrupt", Label: partFile, Kind: faultinj.KindErr,
	})
	faultinj.Enable(sched)
	t.Cleanup(faultinj.Disable)

	// Drive the owner straight at its corrupt replica: the verifying read
	// fails, the file is quarantined, and the error is retryable so the
	// failover layer can go to the other replica.
	q := dataset.Record(g, 5, 11).Values.ZNormalize()
	w := pool.worker(owner)
	if w == nil {
		t.Fatalf("owner %s not in pool", owner)
	}
	var reply KNNPartitionReply
	err = pool.callWorker(ctx, w, "Worker.KNNPartition", KNNPartitionArgs{
		StoreDir: ReplicaDir(dstDir, owner), PID: entry.PID, Query: q, K: 3,
		Threshold: inf(), WordLen: cfg.WordLen,
	}, &reply)
	var wd *WorkerDownError
	if !errors.As(err, &wd) {
		t.Fatalf("scan of corrupt replica returned %v, want a retryable worker error", err)
	}
	if len(sched.Events()) == 0 {
		t.Fatal("corruption failpoint never fired")
	}
	if _, err := os.Stat(partFile + ".quarantined"); err != nil {
		t.Fatalf("corrupt replica was not quarantined: %v", err)
	}

	// The full query path fails over to the healthy replica: exact answer.
	const k = 5
	got, st, err := DistKNNExact(ctx, pool, dstDir, cfg, q, k)
	if err != nil || st.Degraded || st.PartitionsSkipped != 0 {
		t.Fatalf("exact query over quarantined replica: %v (stats %+v)", err, st)
	}
	assertSameNeighbors(t, "quarantine failover", got, exactBaseline(t, dstDir, q, k))

	// One repair pass restores the quarantined copy from the surviving
	// replica. Same owners, so the placement version must not change.
	faultinj.Disable()
	rep := &Repairer{Pool: pool, StoreDir: dstDir, Logf: t.Logf}
	rs, err := rep.RunOnce(ctx)
	if err != nil {
		t.Fatalf("repair pass failed: %v", err)
	}
	if rs.Repaired < 1 || rs.Unrepaired != 0 {
		t.Fatalf("repair did not restore the quarantined replica: %+v", rs)
	}
	if rs.Rebalanced || rs.MapVersion != m.Version {
		t.Fatalf("repair changed placement for an in-place fix: %+v", rs)
	}
	st2, err := storage.Open(ReplicaDir(dstDir, owner))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := st2.VerifyPartitionChecksum(entry.PID)
	if err != nil {
		t.Fatalf("repaired replica unreadable: %v", err)
	}
	if sum != entry.Checksum {
		t.Fatalf("repaired replica checksum %08x, want %08x", sum, entry.Checksum)
	}
}

// The half-open breaker admits exactly one trial call. While the probe is in
// flight every other call is rejected without touching the worker; a failed
// probe re-opens the breaker; a successful one closes it.
func TestFaultInjectionBreakerFlap(t *testing.T) {
	addrs := startWorkers(t, 1)
	ctx := context.Background()
	pol := faultPolicy()
	pol.MaxAttempts = 1
	pol.CallTimeout = 200 * time.Millisecond
	pol.BreakerThreshold = 2
	pol.BreakerCooldown = 60 * time.Millisecond
	pool, err := DialContext(ctx, addrs, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	w := pool.worker(addrs[0])

	// The breaker counts transport failures, so the flap is driven by hangs
	// that exhaust the call timeout: hits 1-2 trip it, hit 3 is the first
	// probe (also hung), and from hit 4 on the worker is healthy again.
	sched := faultinj.NewSchedule(
		faultinj.Rule{Point: PointWorkerKNN, Label: "w0", Hits: []int{1, 2, 3}, Kind: faultinj.KindHang},
	)
	faultinj.Enable(sched)
	t.Cleanup(faultinj.Disable)

	// The call's args are never validated: the failpoint fires first, and
	// once the worker is healthy the K<1 application error proves a full
	// round-trip (application errors are breaker successes).
	call := func() error {
		var reply KNNPartitionReply
		return pool.callWorker(ctx, w, "Worker.KNNPartition", KNNPartitionArgs{StoreDir: t.TempDir()}, &reply)
	}

	var wd *WorkerDownError
	for i := 0; i < 2; i++ {
		if err := call(); !errors.As(err, &wd) {
			t.Fatalf("hung call %d returned %v, want WorkerDownError", i, err)
		}
	}
	if err := call(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("call inside cooldown returned %v, want breaker open", err)
	}
	if got := len(sched.Events()); got != 2 {
		t.Fatalf("worker hit %d times, want 2 (breaker-open call must not reach it)", got)
	}

	// Past the cooldown (plus the max jitter of cooldown/2) the next call is
	// the single probe; it hangs at the failpoint while a second call is
	// rejected immediately with the probe marker.
	time.Sleep(pol.BreakerCooldown + pol.BreakerCooldown/2 + 20*time.Millisecond)
	probeDone := make(chan error, 1)
	go func() { probeDone <- call() }()
	time.Sleep(50 * time.Millisecond)
	err = call()
	if !errors.Is(err, ErrBreakerOpen) || !strings.Contains(err.Error(), "probe in flight") {
		t.Fatalf("call during probe returned %v, want probe-in-flight rejection", err)
	}
	if got := len(sched.Events()); got != 3 {
		t.Fatalf("worker hit %d times, want 3 (only the probe may pass)", got)
	}

	// The probe times out: the breaker re-opens for a fresh cooldown.
	if err := <-probeDone; !errors.As(err, &wd) {
		t.Fatalf("hung probe returned %v, want WorkerDownError", err)
	}
	if err := call(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("call after failed probe returned %v, want breaker open", err)
	}

	// Next cooldown's probe reaches the now-healthy worker and closes the
	// breaker for good.
	time.Sleep(pol.BreakerCooldown + pol.BreakerCooldown/2 + 20*time.Millisecond)
	for i := 0; i < 2; i++ {
		err := call()
		if err == nil || errors.Is(err, ErrBreakerOpen) || errors.As(err, &wd) {
			t.Fatalf("recovered call %d returned %v, want a plain application error", i, err)
		}
	}
	if got := len(sched.Events()); got != 3 {
		t.Fatalf("schedule fired %d times total, want 3", got)
	}
}

// Membership churn during concurrent exact queries: one worker flaps out of
// and back into the pool while DistKNNExact runs at R=2. Flapping a single
// worker keeps the other replica of every partition live, so every answer
// must stay exact — a query that catches the victim mid-removal has to fail
// over, never error or degrade. (Flapping all workers in turn would be a
// different test: a query slow enough to span a full cycle can see both
// owners of a partition die, and the strict path is then required to fail.)
// Repair passes afterwards never move the map version backwards.
func TestFaultInjectionMembershipChurn(t *testing.T) {
	const n = 1500
	srcDir, g := writeTestStore(t, n)
	cfg := testConfig()

	addrs := startWorkers(t, 3)
	ctx := context.Background()
	pool, err := DialContext(ctx, addrs, faultPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	dstDir := filepath.Join(t.TempDir(), "dst")
	if _, err := BuildDistributedOpts(ctx, pool, srcDir, dstDir, t.TempDir(), cfg, BuildOptions{Replication: 2}); err != nil {
		t.Fatal(err)
	}

	const k = 5
	queries := make([]ts.Series, 3)
	want := make([][]knn.Neighbor, len(queries))
	for i := range queries {
		queries[i] = dataset.Record(g, 5, 600+int64(i)).Values.ZNormalize()
		want[i] = exactBaseline(t, dstDir, queries[i], k)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		victim := addrs[0]
		for {
			select {
			case <-stop:
				return
			default:
			}
			pool.RemoveWorker(victim)
			time.Sleep(15 * time.Millisecond)
			pool.AddWorker(victim)
			time.Sleep(15 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for wi := 0; wi < 3; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for iter := 0; iter < 6; iter++ {
				qi := (wi + iter) % len(queries)
				got, st, err := DistKNNExact(ctx, pool, dstDir, cfg, queries[qi], k)
				if err != nil {
					t.Errorf("worker %d iter %d: %v", wi, iter, err)
					return
				}
				if st.Degraded || st.PartitionsSkipped != 0 {
					t.Errorf("worker %d iter %d degraded: %+v", wi, iter, st)
					return
				}
				if len(got) != len(want[qi]) {
					t.Errorf("worker %d iter %d: %d results, want %d", wi, iter, len(got), len(want[qi]))
					return
				}
				for j := range want[qi] {
					if got[j].RID != want[qi][j].RID || got[j].Dist != want[qi][j].Dist {
						t.Errorf("worker %d iter %d result %d: %+v, want %+v", wi, iter, j, got[j], want[qi][j])
						return
					}
				}
			}
		}(wi)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	// Back at full membership, repair passes are idempotent and the map
	// version never regresses.
	rep := &Repairer{Pool: pool, StoreDir: dstDir, Logf: t.Logf}
	rs1, err := rep.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := rep.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.MapVersion < rs1.MapVersion {
		t.Fatalf("map version regressed: %d -> %d", rs1.MapVersion, rs2.MapVersion)
	}
	if rs2.Repaired != 0 || rs2.Rebalanced {
		t.Fatalf("second repair pass on a healthy cluster did work: %+v", rs2)
	}
}

// Killing the coordinator leader must not lose committed state or let the map
// version move backwards: the survivors elect a new leader, accept the next
// version, and reject stale proposals.
func TestFaultInjectionCoordinatorLeaderKill(t *testing.T) {
	lnet := raftlite.NewLocalNet()
	ids := []string{"c1", "c2", "c3"}
	regs := map[string]*raftlite.Registry{}
	for _, id := range ids {
		reg, err := raftlite.NewRegistry(raftlite.Config{
			ID: id, Peers: ids, ElectionTimeout: 30 * time.Millisecond,
		}, lnet.Transport(id))
		if err != nil {
			t.Fatal(err)
		}
		lnet.Register(reg.Node())
		regs[id] = reg
	}
	for _, reg := range regs {
		reg.Node().Start()
	}
	t.Cleanup(func() {
		for _, reg := range regs {
			reg.Node().Stop()
		}
	})

	leaderOf := func(exclude string) *raftlite.Registry {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			for id, reg := range regs {
				if id == exclude {
					continue
				}
				if reg.State().IsLeader {
					return reg
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("no leader elected")
		return nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	data, _ := json.Marshal(&PartitionMap{Version: 1})
	leader := leaderOf("")
	if err := leader.ProposeMap(ctx, 1, data); err != nil {
		t.Fatalf("map v1 commit: %v", err)
	}
	leaderID := leader.Node().ID()

	// Kill the leader. The survivors must elect a successor that already has
	// v1 and accepts v2 — and still rejects a replay of v1.
	lnet.Cut(leaderID)
	next := leaderOf(leaderID)
	data2, _ := json.Marshal(&PartitionMap{Version: 2})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := next.ProposeMap(ctx, 2, data2); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("map v2 commit after leader kill: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
		next = leaderOf(leaderID)
	}
	if err := next.ProposeMap(ctx, 1, data); err == nil {
		t.Fatal("stale map v1 accepted after v2 committed")
	}
	for id, reg := range regs {
		if id == leaderID {
			continue
		}
		converged := time.Now().Add(5 * time.Second)
		for reg.State().MapVersion != 2 {
			if time.Now().After(converged) {
				t.Fatalf("survivor %s stuck at map v%d, want v2", id, reg.State().MapVersion)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
