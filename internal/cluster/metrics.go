package cluster

import "github.com/tardisdb/tardis/internal/obs"

// Stage telemetry, fed from the same record() choke point that builds the
// per-run StageMetrics slice, so Metrics() and /metrics always agree. Stage
// names form a bounded set (they are string literals at the Map/Reduce call
// sites), so they are safe as a label.
var (
	mStageDuration = obs.NewHistogramVec("tardis_cluster_stage_duration_seconds",
		"Wall time of each simulated-cluster stage run.", nil, "stage")
	mStageTasks = obs.NewCounterVec("tardis_cluster_stage_tasks_total",
		"Tasks executed per stage.", "stage")
	mStageSkipped = obs.NewCounterVec("tardis_cluster_stage_tasks_skipped_total",
		"Tasks skipped because an earlier task in the stage failed.", "stage")
	mShuffledRecords = obs.NewCounterVec("tardis_cluster_shuffle_records_total",
		"Records (or bytes, for broadcasts) moved between partitions per stage.", "stage")
)
