package cluster

import (
	"fmt"
	"time"
)

// Additional RDD-style operators rounding out the substrate's Spark surface.
// TARDIS's build pipeline only needs map / reduceByKey / mapPartitions /
// repartitionBy / broadcast, but downstream analytics on the same substrate
// (and the evaluation harness) also use filtering, flattening, unions, and
// sampling.

// Filter keeps the elements for which pred returns true, preserving order.
func Filter[T any](name string, d *Dataset[T], pred func(T) bool) *Dataset[T] {
	start := time.Now()
	parts := make([][]T, len(d.parts))
	var in, out int64
	_, _ = d.c.runTasks(len(d.parts), func(i int) error {
		var res []T
		for _, t := range d.parts[i] {
			if pred(t) {
				res = append(res, t)
			}
		}
		parts[i] = res
		return nil
	})
	for i := range parts {
		in += int64(len(d.parts[i]))
		out += int64(len(parts[i]))
	}
	d.c.record(StageMetrics{Name: name, Tasks: len(d.parts), RecordsIn: in, RecordsOut: out, Duration: time.Since(start)})
	return &Dataset[T]{c: d.c, parts: parts}
}

// FlatMap applies f to every element and concatenates the results, one task
// per partition.
func FlatMap[T, U any](name string, d *Dataset[T], f func(T) []U) *Dataset[U] {
	out, _ := FlatMapErr(name, d, func(t T) ([]U, error) { return f(t), nil })
	return out
}

// FlatMapErr is FlatMap with error propagation.
func FlatMapErr[T, U any](name string, d *Dataset[T], f func(T) ([]U, error)) (*Dataset[U], error) {
	start := time.Now()
	parts := make([][]U, len(d.parts))
	skipped, err := d.c.runTasks(len(d.parts), func(i int) error {
		var res []U
		for _, t := range d.parts[i] {
			us, err := f(t)
			if err != nil {
				return fmt.Errorf("cluster: stage %s partition %d: %w", name, i, err)
			}
			res = append(res, us...)
		}
		parts[i] = res
		return nil
	})
	var in, out int64
	for i := range parts {
		in += int64(len(d.parts[i]))
		out += int64(len(parts[i]))
	}
	d.c.record(StageMetrics{Name: name, Tasks: len(d.parts), TasksSkipped: skipped, RecordsIn: in, RecordsOut: out, Duration: time.Since(start)})
	if err != nil {
		return nil, err
	}
	return &Dataset[U]{c: d.c, parts: parts}, nil
}

// Union concatenates datasets partition-wise (a's partitions followed by
// b's). Both must belong to the same cluster.
func Union[T any](a, b *Dataset[T]) (*Dataset[T], error) {
	if a.c != b.c {
		return nil, fmt.Errorf("cluster: union of datasets from different clusters")
	}
	parts := make([][]T, 0, len(a.parts)+len(b.parts))
	parts = append(parts, a.parts...)
	parts = append(parts, b.parts...)
	return &Dataset[T]{c: a.c, parts: parts}, nil
}

// Sample deterministically keeps approximately fraction of the elements,
// chosen by a seeded per-element hash of the element's position — stable
// across runs and independent of partitioning.
func Sample[T any](name string, d *Dataset[T], fraction float64, seed int64) (*Dataset[T], error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("cluster: sample fraction must be in [0,1], got %v", fraction)
	}
	threshold := uint64(fraction * float64(^uint64(0)>>1))
	start := time.Now()
	parts := make([][]T, len(d.parts))
	offsets := make([]int64, len(d.parts))
	var off int64
	for i := range d.parts {
		offsets[i] = off
		off += int64(len(d.parts[i]))
	}
	_, _ = d.c.runTasks(len(d.parts), func(i int) error {
		var res []T
		for j, t := range d.parts[i] {
			h := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(offsets[i]+int64(j))*0xbf58476d1ce4e5b9
			h ^= h >> 31
			h *= 0x94d049bb133111eb
			h ^= h >> 29
			if (h >> 1) < threshold {
				res = append(res, t)
			}
		}
		parts[i] = res
		return nil
	})
	var in, out int64
	for i := range parts {
		in += int64(len(d.parts[i]))
		out += int64(len(parts[i]))
	}
	d.c.record(StageMetrics{Name: name, Tasks: len(d.parts), RecordsIn: in, RecordsOut: out, Duration: time.Since(start)})
	return &Dataset[T]{c: d.c, parts: parts}, nil
}

// Reduce folds all elements into one value with a commutative, associative
// combiner, computing per-partition partials in parallel. It returns the
// zero value and false for an empty dataset.
func Reduce[T any](name string, d *Dataset[T], combine func(T, T) T) (T, bool) {
	start := time.Now()
	partials := make([]*T, len(d.parts))
	_, _ = d.c.runTasks(len(d.parts), func(i int) error {
		if len(d.parts[i]) == 0 {
			return nil
		}
		acc := d.parts[i][0]
		for _, t := range d.parts[i][1:] {
			acc = combine(acc, t)
		}
		partials[i] = &acc
		return nil
	})
	var result T
	found := false
	for _, p := range partials {
		if p == nil {
			continue
		}
		if !found {
			result, found = *p, true
		} else {
			result = combine(result, *p)
		}
	}
	d.c.record(StageMetrics{Name: name, Tasks: len(d.parts), RecordsIn: d.Count(), RecordsOut: 1, Duration: time.Since(start)})
	return result, found
}
