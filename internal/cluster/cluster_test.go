package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
	"testing/quick"
)

func newCluster(t *testing.T, workers int) *Cluster {
	t.Helper()
	c, err := New(Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func strHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Workers: 0}); err == nil {
		t.Error("workers=0 should fail")
	}
	c, err := New(Config{Workers: 4, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Workers() != 4 {
		t.Errorf("Workers = %d", c.Workers())
	}
}

func TestParallelize(t *testing.T) {
	c := newCluster(t, 4)
	data := make([]int, 10)
	for i := range data {
		data[i] = i
	}
	d := Parallelize(c, data, 0)
	if d.NumPartitions() != 4 {
		t.Errorf("partitions = %d, want 4", d.NumPartitions())
	}
	if d.Count() != 10 {
		t.Errorf("count = %d", d.Count())
	}
	got := d.Collect()
	for i, v := range got {
		if v != i {
			t.Errorf("collect[%d] = %d", i, v)
		}
	}
	// More partitions than elements collapses.
	d2 := Parallelize(c, []int{1, 2}, 10)
	if d2.NumPartitions() != 2 {
		t.Errorf("partitions = %d, want 2", d2.NumPartitions())
	}
	// Empty data.
	d3 := Parallelize[int](c, nil, 0)
	if d3.Count() != 0 || d3.NumPartitions() != 4 {
		t.Errorf("empty: count=%d parts=%d", d3.Count(), d3.NumPartitions())
	}
}

func TestMap(t *testing.T) {
	c := newCluster(t, 3)
	d := Parallelize(c, []int{1, 2, 3, 4, 5}, 0)
	m := Map("double", d, func(v int) int { return v * 2 })
	got := m.Collect()
	want := []int{2, 4, 6, 8, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	stages := c.Stages()
	if len(stages) != 1 || stages[0].Name != "double" || stages[0].RecordsIn != 5 {
		t.Errorf("stage metrics wrong: %+v", stages)
	}
}

func TestMapErr(t *testing.T) {
	c := newCluster(t, 2)
	d := Parallelize(c, []int{1, 2, 3}, 0)
	boom := errors.New("boom")
	_, err := MapErr("failing", d, func(v int) (int, error) {
		if v == 2 {
			return 0, boom
		}
		return v, nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestMapPartitions(t *testing.T) {
	c := newCluster(t, 3)
	d := Parallelize(c, []int{1, 2, 3, 4, 5, 6}, 3)
	sums, err := MapPartitions("sum", d, func(pid int, items []int) ([]int, error) {
		s := 0
		for _, v := range items {
			s += v
		}
		return []int{s}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sums.Collect() {
		total += s
	}
	if total != 21 {
		t.Errorf("partition sums total %d, want 21", total)
	}
	if sums.NumPartitions() != 3 {
		t.Errorf("partitions = %d", sums.NumPartitions())
	}
	_, err = MapPartitions("fail", d, func(pid int, items []int) ([]int, error) {
		return nil, errors.New("nope")
	})
	if err == nil {
		t.Error("error not propagated")
	}
}

func TestReduceByKey(t *testing.T) {
	c := newCluster(t, 4)
	var pairs []Pair[string, int64]
	for i := 0; i < 100; i++ {
		pairs = append(pairs, Pair[string, int64]{Key: fmt.Sprintf("k%d", i%7), Value: 1})
	}
	d := Parallelize(c, pairs, 0)
	red, err := ReduceByKey("count", d, 3, strHash, func(a, b int64) int64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, p := range red.Collect() {
		got[p.Key] = p.Value
	}
	if len(got) != 7 {
		t.Fatalf("keys = %d, want 7", len(got))
	}
	var total int64
	for _, v := range got {
		total += v
	}
	if total != 100 {
		t.Errorf("total = %d, want 100", total)
	}
	// k0 and k1 appear 15 times (i=0,7,...,98 → 15 for k0..k1; 14 for rest).
	if got["k0"] != 15 || got["k6"] != 14 {
		t.Errorf("k0=%d k6=%d", got["k0"], got["k6"])
	}
	// Shuffle volume recorded.
	stages := c.Stages()
	last := stages[len(stages)-1]
	if last.ShuffledRecords == 0 {
		t.Error("shuffle not recorded")
	}
}

func TestReduceByKeyDeterministicOrder(t *testing.T) {
	c := newCluster(t, 4)
	run := func() []Pair[string, int64] {
		var pairs []Pair[string, int64]
		for i := 0; i < 50; i++ {
			pairs = append(pairs, Pair[string, int64]{Key: fmt.Sprintf("key-%02d", i%13), Value: int64(i)})
		}
		d := Parallelize(c, pairs, 0)
		r, err := ReduceByKey("det", d, 5, strHash, func(a, b int64) int64 { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		return r.Collect()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRepartitionBy(t *testing.T) {
	c := newCluster(t, 4)
	data := make([]int, 20)
	for i := range data {
		data[i] = i
	}
	d := Parallelize(c, data, 4)
	r, err := RepartitionBy("route", d, 2, func(v int) (int, error) { return v % 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPartitions() != 2 {
		t.Fatalf("partitions = %d", r.NumPartitions())
	}
	for _, v := range r.Partition(0) {
		if v%2 != 0 {
			t.Errorf("odd value %d in even partition", v)
		}
	}
	if r.Count() != 20 {
		t.Errorf("count = %d", r.Count())
	}
	// Stability: within a target partition, source order preserved.
	evens := r.Partition(0)
	if !sort.IntsAreSorted(evens) {
		t.Errorf("repartition not stable: %v", evens)
	}
	// Errors.
	if _, err := RepartitionBy("bad", d, 0, nil); err == nil {
		t.Error("zero target partitions should fail")
	}
	if _, err := RepartitionBy("oob", d, 2, func(v int) (int, error) { return 5, nil }); err == nil {
		t.Error("out-of-range route should fail")
	}
	boom := errors.New("boom")
	if _, err := RepartitionBy("err", d, 2, func(v int) (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Error("partitioner error not propagated")
	}
}

func TestBroadcast(t *testing.T) {
	c := newCluster(t, 3)
	b := NewBroadcast(c, "bcast", map[string]int{"a": 1}, 1024)
	if b.Value["a"] != 1 || b.Size != 1024 {
		t.Error("broadcast value wrong")
	}
	stages := c.Stages()
	if len(stages) != 1 || stages[0].ShuffledRecords != 1024 {
		t.Errorf("broadcast metrics wrong: %+v", stages)
	}
}

func TestResetMetrics(t *testing.T) {
	c := newCluster(t, 2)
	Map("m", Parallelize(c, []int{1}, 0), func(v int) int { return v })
	if len(c.Stages()) == 0 {
		t.Fatal("no stages recorded")
	}
	c.ResetMetrics()
	if len(c.Stages()) != 0 {
		t.Error("reset did not clear stages")
	}
}

// Property: Map then Collect preserves order and length for any input.
func TestMapOrderProperty(t *testing.T) {
	c := newCluster(t, 5)
	f := func(data []int32) bool {
		in := make([]int, len(data))
		for i, v := range data {
			in[i] = int(v)
		}
		d := Parallelize(c, in, 0)
		m := Map("id", d, func(v int) int { return v })
		got := m.Collect()
		if len(got) != len(in) {
			return false
		}
		for i := range in {
			if got[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ReduceByKey conserves the total for addition.
func TestReduceConservesProperty(t *testing.T) {
	c := newCluster(t, 4)
	f := func(keys []uint8) bool {
		var pairs []Pair[string, int64]
		var want int64
		for _, k := range keys {
			pairs = append(pairs, Pair[string, int64]{Key: fmt.Sprintf("k%d", k%16), Value: int64(k)})
			want += int64(k)
		}
		d := Parallelize(c, pairs, 0)
		r, err := ReduceByKey("sum", d, 3, strHash, func(a, b int64) int64 { return a + b })
		if err != nil {
			return false
		}
		var got int64
		for _, p := range r.Collect() {
			got += p.Value
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunTasksStopsAfterError(t *testing.T) {
	c, err := New(Config{Workers: 4, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("task failed")
	ran := 0
	skipped, err := c.runTasks(100, func(i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// With parallelism 1 the single worker stops right after the failure.
	if ran != 3 {
		t.Fatalf("ran %d tasks after failure at task 2, want 3", ran)
	}
	// The remaining queue is drained, not abandoned: every never-run task is
	// accounted for.
	if skipped != 97 {
		t.Fatalf("skipped = %d, want 97", skipped)
	}
}

func TestRunTasksSkippedInStageMetrics(t *testing.T) {
	c, err := New(Config{Workers: 4, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := Parallelize(c, []int{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	boom := errors.New("partition failed")
	_, err = MapErr("abort", d, func(v int) (int, error) {
		if v == 2 {
			return 0, boom
		}
		return v, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	stages := c.Stages()
	if len(stages) == 0 {
		t.Fatal("failed stage recorded no metrics")
	}
	last := stages[len(stages)-1]
	if last.Name != "abort" {
		t.Fatalf("last stage = %q, want abort", last.Name)
	}
	// Partition 1 fails (parallelism 1 ⇒ partitions run in order), so the
	// remaining 6 queued tasks are skipped.
	if last.TasksSkipped != 6 {
		t.Fatalf("TasksSkipped = %d, want 6", last.TasksSkipped)
	}
}

func TestRunTasksNoError(t *testing.T) {
	c := newCluster(t, 4)
	var ran [20]bool
	if _, err := c.runTasks(20, func(i int) error { ran[i] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, ok := range ran {
		if !ok {
			t.Fatalf("task %d never ran", i)
		}
	}
}

func TestReduceByKeyShuffleVolume(t *testing.T) {
	c := newCluster(t, 4)
	// 4 source partitions × 5 distinct keys each: the bucketed shuffle must
	// route exactly one combined pair per (source, key), independent of the
	// reducer count.
	var pairs []Pair[string, int64]
	for i := 0; i < 200; i++ {
		pairs = append(pairs, Pair[string, int64]{Key: fmt.Sprintf("k%d", i%5), Value: 1})
	}
	d := Parallelize(c, pairs, 4)
	for _, reducers := range []int{1, 3, 8} {
		c.ResetMetrics()
		r, err := ReduceByKey("vol", d, reducers, strHash, func(a, b int64) int64 { return a + b })
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, p := range r.Collect() {
			total += p.Value
		}
		if total != 200 {
			t.Fatalf("reducers=%d: total = %d, want 200", reducers, total)
		}
		stages := c.Stages()
		last := stages[len(stages)-1]
		if last.ShuffledRecords != 20 {
			t.Fatalf("reducers=%d: shuffled = %d, want 20 (4 sources × 5 keys)", reducers, last.ShuffledRecords)
		}
	}
}
