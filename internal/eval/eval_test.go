package eval

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/tardisdb/tardis/internal/dataset"
)

func smallSpecs() []DatasetSpec {
	var specs []DatasetSpec
	for _, k := range dataset.Kinds() {
		specs = append(specs, DatasetSpec{Kind: k, SeriesLen: 32, N: 1500, Seed: 3, BlockRecs: 300})
	}
	return specs
}

func newEnv(t *testing.T) *Env {
	t.Helper()
	e, err := NewEnv(4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDatasetCaching(t *testing.T) {
	e := newEnv(t)
	spec := smallSpecs()[0]
	a, err := e.Dataset(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Dataset(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dir() != b.Dir() {
		t.Error("same spec should return the cached store")
	}
	na, _ := a.TotalRecords()
	if na != spec.N {
		t.Errorf("store holds %d records", na)
	}
}

func TestQueriesWorkload(t *testing.T) {
	spec := smallSpecs()[0]
	qs, err := Queries(spec, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.Existing) != 10 || len(qs.Absent) != 10 {
		t.Fatalf("workload split %d/%d", len(qs.Existing), len(qs.Absent))
	}
	for _, q := range append(qs.Existing, qs.Absent...) {
		if len(q) != spec.SeriesLen {
			t.Fatal("query length wrong")
		}
	}
	kq, err := KNNQueries(spec, 5, 1)
	if err != nil || len(kq) != 5 {
		t.Fatalf("knn queries: %d, %v", len(kq), err)
	}
}

func TestFig9SkewOrdering(t *testing.T) {
	e := newEnv(t)
	rows, err := Fig9(e, smallSpecs(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	shares := map[string]float64{}
	for _, r := range rows {
		shares[r.Dataset] = r.TopShare
		if r.Distinct < 1 || r.TopShare <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Dataset, r)
		}
	}
	// The paper's skew spectrum: NOAA most skewed, RandomWalk least.
	if shares["noaa"] < shares["randomwalk"] {
		t.Errorf("noaa (%.3f) should be more skewed than randomwalk (%.3f)",
			shares["noaa"], shares["randomwalk"])
	}
	var buf bytes.Buffer
	ReportFig9(&buf, rows)
	if !strings.Contains(buf.String(), "noaa") {
		t.Error("report missing dataset")
	}
}

func TestFig10And11(t *testing.T) {
	e := newEnv(t)
	specs := smallSpecs()[:1]
	rows, err := Fig10(e, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("fig10 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total <= 0 || r.Partitions < 1 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	rows11, err := Fig11(e, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows11) != 2 {
		t.Fatalf("fig11 rows = %d", len(rows11))
	}
	var buf bytes.Buffer
	ReportFig10(&buf, rows)
	ReportFig11(&buf, rows11)
	if !strings.Contains(buf.String(), "TARDIS") || !strings.Contains(buf.String(), "Baseline") {
		t.Error("reports missing systems")
	}
}

func TestFig12(t *testing.T) {
	e := newEnv(t)
	rows, err := Fig12(e, []int64{800, 1600}, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.WithBloom <= 0 || r.NoBloom <= 0 || r.BloomBytes <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	var buf bytes.Buffer
	ReportFig12(&buf, rows)
	if !strings.Contains(buf.String(), "bloom") {
		t.Error("report missing content")
	}
}

func TestFig13(t *testing.T) {
	e := newEnv(t)
	rows, err := Fig13(e, smallSpecs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var tardisGlobal, baselineGlobal int64
	for _, r := range rows {
		if r.GlobalBytes <= 0 || r.LocalBytes <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
		if r.System == "TARDIS" {
			tardisGlobal = r.GlobalBytes
		} else {
			baselineGlobal = r.GlobalBytes
		}
	}
	// The paper's Fig 13(a): TARDIS's global index (whole sigTree) is larger
	// than the baseline's flat partition table.
	if tardisGlobal <= baselineGlobal {
		t.Logf("note: tardis global %d <= baseline %d at this scale", tardisGlobal, baselineGlobal)
	}
	var buf bytes.Buffer
	ReportFig13(&buf, rows)
}

func TestFig14(t *testing.T) {
	e := newEnv(t)
	rows, err := Fig14(e, smallSpecs()[:1], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Recall != 1.0 {
			t.Errorf("%s: exact-match recall %.2f, want 100%%", r.Variant, r.Recall)
		}
		if r.AvgLatency <= 0 {
			t.Errorf("%s: no latency", r.Variant)
		}
	}
	// Bloom variant loads fewer partitions on average than non-bloom.
	var bf, nobf float64
	for _, r := range rows {
		switch r.Variant {
		case "Tardis-BF":
			bf = r.AvgPartitionLoad
		case "Tardis-NoBF":
			nobf = r.AvgPartitionLoad
		}
	}
	if bf > nobf+1e-9 {
		t.Errorf("bloom variant loads more partitions (%.2f) than non-bloom (%.2f)", bf, nobf)
	}
	var buf bytes.Buffer
	ReportFig14(&buf, rows)
}

func TestFig15KNNAccuracyOrdering(t *testing.T) {
	e := newEnv(t)
	spec := DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: 32, N: 3000, Seed: 3, BlockRecs: 500}
	rows, err := Fig15(e, []DatasetSpec{spec}, 6, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byStrat := map[string]KNNRow{}
	for _, r := range rows {
		byStrat[r.Strategy] = r
		if r.ErrorRatio < 1-1e-9 {
			t.Errorf("%s: error ratio %.3f below 1", r.Strategy, r.ErrorRatio)
		}
		if r.Recall < 0 || r.Recall > 1 {
			t.Errorf("%s: recall %.3f out of range", r.Strategy, r.Recall)
		}
	}
	// The paper's headline ordering: MPA >= OPA >= TNA on recall.
	if byStrat[StratMPA].Recall < byStrat[StratOPA].Recall-1e-9 {
		t.Errorf("MPA recall %.3f < OPA %.3f", byStrat[StratMPA].Recall, byStrat[StratOPA].Recall)
	}
	if byStrat[StratOPA].Recall < byStrat[StratTNA].Recall-1e-9 {
		t.Errorf("OPA recall %.3f < TNA %.3f", byStrat[StratOPA].Recall, byStrat[StratTNA].Recall)
	}
	// And TARDIS's best strategy beats the baseline.
	if byStrat[StratMPA].Recall < byStrat[StratBaseline].Recall-1e-9 {
		t.Errorf("MPA recall %.3f below baseline %.3f",
			byStrat[StratMPA].Recall, byStrat[StratBaseline].Recall)
	}
	var buf bytes.Buffer
	ReportKNN(&buf, "Fig 15", rows)
}

func TestFig16Sweeps(t *testing.T) {
	e := newEnv(t)
	rows, err := Fig16Size(e, "randomwalk", 32, []int64{1000, 2000}, 3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("size sweep rows = %d", len(rows))
	}
	spec := DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: 32, N: 2000, Seed: 3, BlockRecs: 400}
	rowsK, err := Fig16K(e, spec, 3, []int{5, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsK) != 8 {
		t.Fatalf("k sweep rows = %d", len(rowsK))
	}
}

func TestFig17(t *testing.T) {
	e := newEnv(t)
	spec := DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: 32, N: 2000, Seed: 3, BlockRecs: 200}
	rows, err := Fig17(e, spec, []float64{0.2, 1.0}, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The 100% build has zero MSE against itself.
	for _, r := range rows {
		if r.SamplePct == 1.0 && r.PartitionMSE != 0 {
			t.Errorf("100%% sampling should have zero MSE, got %v", r.PartitionMSE)
		}
		if r.ErrorRatioMPA < 1-1e-9 {
			t.Errorf("error ratio %v below 1", r.ErrorRatioMPA)
		}
	}
	var buf bytes.Buffer
	ReportFig17(&buf, rows)
}

func TestFormatHelpers(t *testing.T) {
	if Bytes(512) != "512B" || !strings.Contains(Bytes(2048), "KiB") ||
		!strings.Contains(Bytes(5<<20), "MiB") || !strings.Contains(Bytes(3<<30), "GiB") {
		t.Error("byte formatting wrong")
	}
	if Pct(0.5) != "50.0%" {
		t.Error("pct formatting wrong")
	}
	var buf bytes.Buffer
	PrintTable(&buf, "T", []string{"a", "bb"}, [][]string{{"1", "2"}})
	out := buf.String()
	if !strings.Contains(out, "T\n=") || !strings.Contains(out, "a ") {
		t.Errorf("table output: %q", out)
	}
}

func TestFig14SimulatedHDFS(t *testing.T) {
	e := newEnv(t)
	rows, err := Fig14SimulatedHDFS(e, smallSpecs()[:1], 8, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var bf, base Fig14Row
	for _, r := range rows {
		if r.Recall != 1.0 {
			t.Errorf("%s recall %.2f", r.Variant, r.Recall)
		}
		switch r.Variant {
		case "Tardis-BF":
			bf = r
		case "Baseline":
			base = r
		}
	}
	// With per-load latency dominating, fewer loads must mean lower latency.
	if bf.AvgPartitionLoad >= base.AvgPartitionLoad {
		t.Errorf("bloom loads %.2f not below baseline %.2f", bf.AvgPartitionLoad, base.AvgPartitionLoad)
	}
	if bf.AvgLatency >= base.AvgLatency {
		t.Errorf("bloom latency %v not below baseline %v under simulated HDFS", bf.AvgLatency, base.AvgLatency)
	}
}

func TestAblationPth(t *testing.T) {
	e := newEnv(t)
	spec := DatasetSpec{Kind: dataset.RandomWalk, SeriesLen: 32, N: 2000, Seed: 3, BlockRecs: 400}
	rows, err := AblationPth(e, spec, 4, 10, []int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Recall must be non-decreasing in pth; loads non-decreasing.
	for i := 1; i < len(rows); i++ {
		if rows[i].Recall < rows[i-1].Recall-1e-9 {
			t.Errorf("recall fell from %.3f to %.3f as pth grew", rows[i-1].Recall, rows[i].Recall)
		}
		if rows[i].AvgLoads < rows[i-1].AvgLoads-1e-9 {
			t.Errorf("loads fell as pth grew")
		}
	}
	var buf bytes.Buffer
	ReportPth(&buf, rows)
	if !strings.Contains(buf.String(), "pth") {
		t.Error("report missing header")
	}
}

func TestWarmCache(t *testing.T) {
	e := newEnv(t)
	spec := smallSpecs()[0]
	rows, err := WarmCache(e, spec, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Mode != "cold" || rows[1].Mode != "warm" {
		t.Fatalf("rows = %+v, want [cold warm]", rows)
	}
	cold, warm := rows[0], rows[1]
	if cold.CacheHits != 0 || cold.CacheMisses != 0 {
		t.Errorf("cold run touched the cache: %+v", cold)
	}
	if cold.DiskReads == 0 {
		t.Error("cold run read nothing from disk; experiment is vacuous")
	}
	if warm.DiskReads != 0 {
		t.Errorf("warm run read %d partitions from disk, want 0", warm.DiskReads)
	}
	if warm.CacheMisses != 0 || warm.CacheHits == 0 {
		t.Errorf("warm run not fully cache-served: %+v", warm)
	}
	var buf bytes.Buffer
	ReportWarm(&buf, rows)
	if !strings.Contains(buf.String(), "warm speedup") {
		t.Error("report missing speedup line")
	}
}
