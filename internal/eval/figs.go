package eval

import (
	"fmt"
	"sort"
	"time"

	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// ---- Figure 9: dataset signature distribution (skew spectrum) ----

// Fig9Row summarizes one dataset's iSAX-T signature frequency distribution
// at the initial cardinality, the property Fig. 9 plots.
type Fig9Row struct {
	Dataset   string
	N         int64
	Distinct  int     // distinct signatures
	TopShare  float64 // mass of the most frequent signature
	Top10     float64 // mass of the 10 most frequent signatures
	GiniLike  float64 // 1 - sum(p_i^2): 0 = all mass on one signature
	SeriesLen int
}

// Fig9 measures the signature distribution of each dataset spec.
func Fig9(e *Env, specs []DatasetSpec, wordLen, bits int) ([]Fig9Row, error) {
	codec, err := isaxt.NewCodec(wordLen)
	if err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, spec := range specs {
		st, err := e.Dataset(spec)
		if err != nil {
			return nil, err
		}
		freq := map[isaxt.Signature]int64{}
		pids, err := st.Partitions()
		if err != nil {
			return nil, err
		}
		var total int64
		for _, pid := range pids {
			err := st.ScanPartition(pid, func(r ts.Record) error {
				sig, err := codec.FromSeries(r.Values, bits)
				if err != nil {
					return err
				}
				freq[sig]++
				total++
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		counts := make([]int64, 0, len(freq))
		for _, c := range freq {
			counts = append(counts, c)
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
		row := Fig9Row{Dataset: string(spec.Kind), N: total, Distinct: len(freq), SeriesLen: spec.SeriesLen}
		if total > 0 && len(counts) > 0 {
			row.TopShare = float64(counts[0]) / float64(total)
			var top10 int64
			for i := 0; i < len(counts) && i < 10; i++ {
				top10 += counts[i]
			}
			row.Top10 = float64(top10) / float64(total)
			var sq float64
			for _, c := range counts {
				p := float64(c) / float64(total)
				sq += p * p
			}
			row.GiniLike = 1 - sq
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---- Figure 10: clustered index construction time ----

// Fig10Row is one (system, dataset, size) construction measurement.
type Fig10Row struct {
	System     string
	Dataset    string
	N          int64
	GlobalTime time.Duration
	LocalTime  time.Duration
	Total      time.Duration
	Partitions int
}

// Fig10 builds both systems over each spec and reports the construction
// breakdown (global vs local) the paper's Fig. 10 plots.
func Fig10(e *Env, specs []DatasetSpec) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, spec := range specs {
		tix, err := e.BuildTardis(spec, ScaledTardisConfig(spec), "fig10")
		if err != nil {
			return nil, fmt.Errorf("fig10 tardis %s: %w", spec, err)
		}
		tstats := tix.BuildStats()
		rows = append(rows, Fig10Row{
			System: "TARDIS", Dataset: string(spec.Kind), N: spec.N,
			GlobalTime: tstats.GlobalTotal, LocalTime: tstats.LocalTotal,
			Total: tstats.Total, Partitions: tstats.Partitions,
		})
		bix, err := e.BuildBaseline(spec, ScaledBaselineConfig(spec), "fig10")
		if err != nil {
			return nil, fmt.Errorf("fig10 baseline %s: %w", spec, err)
		}
		bstats := bix.BuildStats()
		rows = append(rows, Fig10Row{
			System: "Baseline", Dataset: string(spec.Kind), N: spec.N,
			GlobalTime: bstats.GlobalTotal, LocalTime: bstats.LocalTotal,
			Total: bstats.Total, Partitions: bstats.Partitions,
		})
	}
	return rows, nil
}

// ---- Figure 11: global index construction breakdown ----

// Fig11Row is the per-stage global construction breakdown for one system and
// dataset.
type Fig11Row struct {
	System        string
	Dataset       string
	N             int64
	SampleConvert time.Duration
	NodeStats     time.Duration // TARDIS only; zero for the baseline
	BuildTree     time.Duration
	PartitionAsgn time.Duration
	GlobalTotal   time.Duration
}

// Fig11 reports the paper's global-index stage breakdown.
func Fig11(e *Env, specs []DatasetSpec) ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, spec := range specs {
		tix, err := e.BuildTardis(spec, ScaledTardisConfig(spec), "fig11")
		if err != nil {
			return nil, err
		}
		tst := tix.BuildStats()
		rows = append(rows, Fig11Row{
			System: "TARDIS", Dataset: string(spec.Kind), N: spec.N,
			SampleConvert: tst.SampleConvert, NodeStats: tst.NodeStatistics,
			BuildTree: tst.SkeletonBuild, PartitionAsgn: tst.PartitionAssign,
			GlobalTotal: tst.GlobalTotal,
		})
		bix, err := e.BuildBaseline(spec, ScaledBaselineConfig(spec), "fig11")
		if err != nil {
			return nil, err
		}
		bst := bix.BuildStats()
		rows = append(rows, Fig11Row{
			System: "Baseline", Dataset: string(spec.Kind), N: spec.N,
			SampleConvert: bst.SampleConvert, BuildTree: bst.BuildTree,
			PartitionAsgn: bst.PartitionAssign, GlobalTotal: bst.GlobalTotal,
		})
	}
	return rows, nil
}

// ---- Figure 12: Bloom filter construction overhead ----

// Fig12Row compares TARDIS construction with and without the Bloom filter
// index at one dataset size.
type Fig12Row struct {
	N          int64
	WithBloom  time.Duration
	NoBloom    time.Duration
	BloomStage time.Duration
	BloomBytes int64
}

// Fig12 sweeps dataset sizes on RandomWalk and measures the Bloom overhead.
func Fig12(e *Env, sizes []int64, seriesLen int64, seed int64) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, n := range sizes {
		spec := DatasetSpec{Kind: "randomwalk", SeriesLen: int(seriesLen), N: n, Seed: seed, BlockRecs: blockFor(n)}
		cfgOn := ScaledTardisConfig(spec)
		withIx, err := e.BuildTardis(spec, cfgOn, "fig12-on")
		if err != nil {
			return nil, err
		}
		cfgOff := cfgOn
		cfgOff.BuildBloom = false
		withoutIx, err := e.BuildTardis(spec, cfgOff, "fig12-off")
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig12Row{
			N:          n,
			WithBloom:  withIx.BuildStats().Total,
			NoBloom:    withoutIx.BuildStats().Total,
			BloomStage: withIx.BuildStats().BloomConstruct,
			BloomBytes: withIx.BuildStats().BloomBytes,
		})
	}
	return rows, nil
}

func blockFor(n int64) int64 {
	b := n / 10
	if b < 100 {
		b = 100
	}
	return b
}

// ---- Figure 13: index sizes ----

// Fig13Row reports global and local index sizes for both systems.
type Fig13Row struct {
	System      string
	Dataset     string
	N           int64
	GlobalBytes int64
	LocalBytes  int64
}

// Fig13 builds both systems and reports serialized index sizes.
func Fig13(e *Env, specs []DatasetSpec) ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, spec := range specs {
		tix, err := e.BuildTardis(spec, ScaledTardisConfig(spec), "fig13")
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig13Row{
			System: "TARDIS", Dataset: string(spec.Kind), N: spec.N,
			GlobalBytes: tix.BuildStats().GlobalIndexBytes,
			LocalBytes:  tix.BuildStats().LocalIndexBytes,
		})
		bix, err := e.BuildBaseline(spec, ScaledBaselineConfig(spec), "fig13")
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig13Row{
			System: "Baseline", Dataset: string(spec.Kind), N: spec.N,
			GlobalBytes: bix.BuildStats().GlobalIndexBytes,
			LocalBytes:  bix.BuildStats().LocalIndexBytes,
		})
	}
	return rows, nil
}

// ---- Figure 14: exact-match average query time ----

// Fig14Row reports the average exact-match latency of one variant over the
// 50/50 existing/absent workload, with the paper's cost drivers.
type Fig14Row struct {
	Variant          string // Tardis-BF, Tardis-NoBF, Baseline
	Dataset          string
	N                int64
	AvgLatency       time.Duration
	AvgPartitionLoad float64
	Recall           float64 // fraction of existing queries found (must be 1)
}

// Fig14 runs the exact-match workload (queryCount queries, half existing,
// half absent) against Tardis-BF, Tardis-NoBF, and the baseline.
func Fig14(e *Env, specs []DatasetSpec, queryCount int) ([]Fig14Row, error) {
	return fig14(e, specs, queryCount, storage.LatencyModel{})
}

// Fig14SimulatedHDFS is Fig14 with a synthetic per-partition-load latency
// injected into both systems' stores, emulating the HDFS block-fetch cost
// that dominates the paper's query latency. Under it, the Bloom filter's
// skipped loads translate directly into the paper's ~50% latency cut.
func Fig14SimulatedHDFS(e *Env, specs []DatasetSpec, queryCount int, perLoad time.Duration) ([]Fig14Row, error) {
	return fig14(e, specs, queryCount, storage.LatencyModel{PerLoad: perLoad})
}

func fig14(e *Env, specs []DatasetSpec, queryCount int, lat storage.LatencyModel) ([]Fig14Row, error) {
	var rows []Fig14Row
	for _, spec := range specs {
		qs, err := Queries(spec, queryCount, spec.Seed+7)
		if err != nil {
			return nil, err
		}
		tix, err := e.BuildTardis(spec, ScaledTardisConfig(spec), "fig14")
		if err != nil {
			return nil, err
		}
		bix, err := e.BuildBaseline(spec, ScaledBaselineConfig(spec), "fig14")
		if err != nil {
			return nil, err
		}
		tix.Store.SetLatency(lat)
		bix.Store.SetLatency(lat)
		for _, variant := range []string{"Tardis-BF", "Tardis-NoBF", "Baseline"} {
			var total time.Duration
			var loads int
			found, queries := 0, 0
			run := func(q ts.Series, mustFind bool) error {
				queries++
				var rids []int64
				switch variant {
				case "Tardis-BF":
					r, st, err := tix.ExactMatch(q, true)
					if err != nil {
						return err
					}
					rids, total, loads = r, total+st.Duration, loads+st.PartitionsLoaded
				case "Tardis-NoBF":
					r, st, err := tix.ExactMatch(q, false)
					if err != nil {
						return err
					}
					rids, total, loads = r, total+st.Duration, loads+st.PartitionsLoaded
				case "Baseline":
					r, st, err := bix.ExactMatch(q)
					if err != nil {
						return err
					}
					rids, total, loads = r, total+st.Duration, loads+st.PartitionsLoaded
				}
				if mustFind && len(rids) > 0 {
					found++
				}
				return nil
			}
			for _, q := range qs.Existing {
				if err := run(q, true); err != nil {
					return nil, err
				}
			}
			for _, q := range qs.Absent {
				if err := run(q, false); err != nil {
					return nil, err
				}
			}
			recall := 0.0
			if len(qs.Existing) > 0 {
				recall = float64(found) / float64(len(qs.Existing))
			}
			rows = append(rows, Fig14Row{
				Variant: variant, Dataset: string(spec.Kind), N: spec.N,
				AvgLatency:       total / time.Duration(queries),
				AvgPartitionLoad: float64(loads) / float64(queries),
				Recall:           recall,
			})
		}
	}
	return rows, nil
}
