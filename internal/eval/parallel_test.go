package eval

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// TestParallelSmoke is the `make bench-parallel` gate: FigParallel itself
// verifies result equality across every worker count (it errors out on any
// mismatch), so a clean return proves exactness. The speedup assertion only
// applies on multi-core machines — on one core the parallel path is pure
// overhead and no scaling claim is meaningful.
func TestParallelSmoke(t *testing.T) {
	e := newEnv(t)
	spec := smallSpecs()[0]
	rows, err := FigParallel(e, spec, 4, 5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := DefaultWorkerCounts()
	if len(rows) != 2*len(counts) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(counts))
	}
	for _, r := range rows {
		if r.Workers == counts[0] && r.Speedup != 1 {
			t.Errorf("%s baseline speedup = %v, want 1", r.Query, r.Speedup)
		}
		if r.AvgLatency <= 0 {
			t.Errorf("%s workers=%d: non-positive latency", r.Query, r.Workers)
		}
	}
	if runtime.GOMAXPROCS(0) > 1 {
		// Warm-cache scans must not get slower with all cores engaged.
		for _, r := range rows {
			if r.Workers == runtime.GOMAXPROCS(0) && r.Speedup < 1 {
				t.Errorf("%s at %d workers: speedup %.2fx < 1", r.Query, r.Workers, r.Speedup)
			}
		}
	}
	var buf bytes.Buffer
	ReportParallel(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "exact-knn") || !strings.Contains(out, "dtw-knn") {
		t.Fatalf("report missing streams:\n%s", out)
	}
}
