package eval

import (
	"fmt"
	"io"
	"time"

	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/dpisax"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/ts"
)

// Strategy names used across the kNN figures, in the paper's order.
const (
	StratBaseline = "Baseline"
	StratTNA      = "Target-Node"
	StratOPA      = "One-Partition"
	StratMPA      = "Multi-Partitions"
)

// KNNStrategies lists the four compared query processes.
func KNNStrategies() []string {
	return []string{StratBaseline, StratTNA, StratOPA, StratMPA}
}

// KNNRow is one (strategy, dataset, k, n) measurement: the three metrics the
// paper's Figs. 15-16 report.
type KNNRow struct {
	Strategy   string
	Dataset    string
	N          int64
	K          int
	Recall     float64
	ErrorRatio float64
	AvgLatency time.Duration
}

// runKNN evaluates all four strategies for one built pair of indexes over
// the query set, against exact ground truth.
func runKNN(e *Env, tix *core.Index, bix *dpisax.Index, dsName string, n int64, queries []ts.Series, k int) ([]KNNRow, error) {
	type agg struct {
		recall, errRatio float64
		total            time.Duration
		count            int
	}
	aggs := map[string]*agg{}
	for _, s := range KNNStrategies() {
		aggs[s] = &agg{}
	}
	for _, q := range queries {
		truth, err := tix.GroundTruthKNN(q, k)
		if err != nil {
			return nil, err
		}
		if len(truth) == 0 {
			continue
		}
		eval := func(name string, res []knn.Neighbor, d time.Duration) {
			a := aggs[name]
			a.recall += knn.Recall(truth, res)
			a.errRatio += knn.ErrorRatio(truth, res)
			a.total += d
			a.count++
		}
		if res, st, err := bix.KNNApprox(q, k); err == nil {
			eval(StratBaseline, res, st.Duration)
		} else {
			return nil, fmt.Errorf("baseline knn: %w", err)
		}
		if res, st, err := tix.KNNTargetNode(q, k); err == nil {
			eval(StratTNA, res, st.Duration)
		} else {
			return nil, fmt.Errorf("tna: %w", err)
		}
		if res, st, err := tix.KNNOnePartition(q, k); err == nil {
			eval(StratOPA, res, st.Duration)
		} else {
			return nil, fmt.Errorf("opa: %w", err)
		}
		if res, st, err := tix.KNNMultiPartition(q, k); err == nil {
			eval(StratMPA, res, st.Duration)
		} else {
			return nil, fmt.Errorf("mpa: %w", err)
		}
	}
	var rows []KNNRow
	for _, name := range KNNStrategies() {
		a := aggs[name]
		if a.count == 0 {
			continue
		}
		rows = append(rows, KNNRow{
			Strategy: name, Dataset: dsName, N: n, K: k,
			Recall:     a.recall / float64(a.count),
			ErrorRatio: a.errRatio / float64(a.count),
			AvgLatency: a.total / time.Duration(a.count),
		})
	}
	return rows, nil
}

// Fig15 compares the four strategies across datasets at a fixed k (the
// paper uses k=500 on 400M series; scale k to the dataset size).
func Fig15(e *Env, specs []DatasetSpec, queryCount, k int) ([]KNNRow, error) {
	var rows []KNNRow
	for _, spec := range specs {
		queries, err := KNNQueries(spec, queryCount, spec.Seed)
		if err != nil {
			return nil, err
		}
		tix, err := e.BuildTardis(spec, ScaledTardisConfig(spec), "fig15")
		if err != nil {
			return nil, err
		}
		bix, err := e.BuildBaseline(spec, ScaledBaselineConfig(spec), "fig15")
		if err != nil {
			return nil, err
		}
		r, err := runKNN(e, tix, bix, string(spec.Kind), spec.N, queries, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig16Size sweeps the dataset size at fixed k (paper Fig. 16 left).
func Fig16Size(e *Env, kind string, seriesLen int, sizes []int64, seed int64, queryCount, k int) ([]KNNRow, error) {
	var rows []KNNRow
	for _, n := range sizes {
		spec := DatasetSpec{Kind: datasetKind(kind), SeriesLen: seriesLen, N: n, Seed: seed, BlockRecs: blockFor(n)}
		r, err := Fig15(e, []DatasetSpec{spec}, queryCount, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig16K sweeps k at a fixed dataset size (paper Fig. 16 right).
func Fig16K(e *Env, spec DatasetSpec, queryCount int, ks []int) ([]KNNRow, error) {
	queries, err := KNNQueries(spec, queryCount, spec.Seed)
	if err != nil {
		return nil, err
	}
	tix, err := e.BuildTardis(spec, ScaledTardisConfig(spec), "fig16k")
	if err != nil {
		return nil, err
	}
	bix, err := e.BuildBaseline(spec, ScaledBaselineConfig(spec), "fig16k")
	if err != nil {
		return nil, err
	}
	var rows []KNNRow
	for _, k := range ks {
		r, err := runKNN(e, tix, bix, string(spec.Kind), spec.N, queries, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// ---- Figure 17: impact of sampling percentage ----

// Fig17Row reports the four sampling-quality metrics of the paper's Fig. 17
// for one sampling percentage.
type Fig17Row struct {
	Dataset       string
	SamplePct     float64
	GlobalBuild   time.Duration // construction time (global index)
	GlobalBytes   int64         // global index size
	PartitionMSE  float64       // MSE of partition-size distribution vs 100%
	ErrorRatioMPA float64       // error ratio of top-k MPA queries
}

// Fig17 sweeps sampling percentages, comparing against the 100% build.
func Fig17(e *Env, spec DatasetSpec, pcts []float64, queryCount, k int) ([]Fig17Row, error) {
	queries, err := KNNQueries(spec, queryCount, spec.Seed)
	if err != nil {
		return nil, err
	}
	// Reference build at 100% sampling for the partition-size distribution.
	refCfg := ScaledTardisConfig(spec)
	refCfg.SamplePct = 1.0
	ref, err := e.BuildTardis(spec, refCfg, "fig17-ref")
	if err != nil {
		return nil, err
	}
	refDist, err := partitionSizeHistogram(ref)
	if err != nil {
		return nil, err
	}
	var rows []Fig17Row
	for _, pct := range pcts {
		cfg := ScaledTardisConfig(spec)
		cfg.SamplePct = pct
		ix := ref
		if pct != 1.0 {
			ix, err = e.BuildTardis(spec, cfg, fmt.Sprintf("fig17-%g", pct))
			if err != nil {
				return nil, err
			}
		}
		dist, err := partitionSizeHistogram(ix)
		if err != nil {
			return nil, err
		}
		var errRatio float64
		var count int
		for _, q := range queries {
			truth, err := ix.GroundTruthKNN(q, k)
			if err != nil {
				return nil, err
			}
			if len(truth) == 0 {
				continue
			}
			res, _, err := ix.KNNMultiPartition(q, k)
			if err != nil {
				return nil, err
			}
			errRatio += knn.ErrorRatio(truth, res)
			count++
		}
		if count > 0 {
			errRatio /= float64(count)
		}
		rows = append(rows, Fig17Row{
			Dataset:       string(spec.Kind),
			SamplePct:     pct,
			GlobalBuild:   ix.BuildStats().GlobalTotal,
			GlobalBytes:   ix.BuildStats().GlobalIndexBytes,
			PartitionMSE:  histogramMSE(refDist, dist),
			ErrorRatioMPA: errRatio,
		})
	}
	return rows, nil
}

// partitionSizeHistogram returns the probability distribution of partition
// sizes, bucketed (the paper buckets by 15 MB; we bucket by a tenth of the
// capacity in records).
func partitionSizeHistogram(ix *core.Index) ([]float64, error) {
	pids, err := ix.Store.Partitions()
	if err != nil {
		return nil, err
	}
	bucket := ix.Config().GMaxSize / 10
	if bucket < 1 {
		bucket = 1
	}
	counts := map[int]int{}
	maxBucket := 0
	for _, pid := range pids {
		n, err := ix.Store.PartitionCount(pid)
		if err != nil {
			return nil, err
		}
		b := int(n / bucket)
		counts[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	hist := make([]float64, maxBucket+1)
	for b, c := range counts {
		hist[b] = float64(c) / float64(len(pids))
	}
	return hist, nil
}

// histogramMSE computes the mean squared error between two probability
// histograms, padding the shorter with zeros.
func histogramMSE(a, b []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		var av, bv float64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		d := av - bv
		sum += d * d
	}
	return sum / float64(n)
}

func datasetKind(name string) dataset.Kind { return dataset.Kind(name) }

// PthRow is one Multi-Partitions pth setting's accuracy/latency measurement
// (an ablation beyond the paper, which fixes pth = 40).
type PthRow struct {
	Pth        int
	Recall     float64
	ErrorRatio float64
	AvgLatency time.Duration
	AvgLoads   float64
}

// AblationPth sweeps the Multi-Partitions partition cap.
func AblationPth(e *Env, spec DatasetSpec, queryCount, k int, pths []int) ([]PthRow, error) {
	queries, err := KNNQueries(spec, queryCount, spec.Seed)
	if err != nil {
		return nil, err
	}
	tix, err := e.BuildTardis(spec, ScaledTardisConfig(spec), "ablation-pth")
	if err != nil {
		return nil, err
	}
	var rows []PthRow
	for _, pth := range pths {
		if err := tix.SetPartitionThreshold(pth); err != nil {
			return nil, err
		}
		var row PthRow
		row.Pth = pth
		count := 0
		for _, q := range queries {
			truth, err := tix.GroundTruthKNN(q, k)
			if err != nil {
				return nil, err
			}
			if len(truth) == 0 {
				continue
			}
			res, st, err := tix.KNNMultiPartition(q, k)
			if err != nil {
				return nil, err
			}
			row.Recall += knn.Recall(truth, res)
			row.ErrorRatio += knn.ErrorRatio(truth, res)
			row.AvgLatency += st.Duration
			row.AvgLoads += float64(st.PartitionsLoaded)
			count++
		}
		if count > 0 {
			row.Recall /= float64(count)
			row.ErrorRatio /= float64(count)
			row.AvgLatency /= time.Duration(count)
			row.AvgLoads /= float64(count)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ReportPth renders the pth ablation rows.
func ReportPth(w io.Writer, rows []PthRow) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.Pth), Pct(r.Recall), fmt.Sprintf("%.3f", r.ErrorRatio),
			Dur(r.AvgLatency), fmt.Sprintf("%.1f", r.AvgLoads),
		})
	}
	PrintTable(w, "Ablation: Multi-Partitions pth (partitions loaded cap)",
		[]string{"pth", "recall", "error-ratio", "avg latency", "avg loads"}, out)
}
