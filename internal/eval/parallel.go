package eval

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/ts"
)

// The intra-query scaling experiment (ROADMAP: MESSI/ParIS+-style
// parallelism): the same warm-cache exact query stream is replayed at
// increasing per-query worker counts, so the entire latency gap is
// attributable to the qpar work-stealing layer — partition loads are cache
// hits, the answers are bit-identical at every worker count, and only the
// scan/refine work spreads across cores.

// ParallelRow is one (query type, worker count) cell of the scaling curve.
type ParallelRow struct {
	Dataset    string
	Query      string // "exact-knn" or "dtw-knn"
	Workers    int
	Queries    int
	AvgLatency time.Duration
	Speedup    float64 // vs the workers=1 row of the same query type
}

// DefaultWorkerCounts doubles from 1 up to GOMAXPROCS (always including it).
func DefaultWorkerCounts() []int {
	np := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for w := 2; w < np; w *= 2 {
		counts = append(counts, w)
	}
	if np > 1 {
		counts = append(counts, np)
	}
	return counts
}

// FigParallel builds one index, primes its partition cache, and sweeps the
// per-query worker count over warm exact-kNN and DTW-kNN streams. Results at
// every worker count are verified identical to the workers=1 answers before
// latencies are reported.
func FigParallel(e *Env, spec DatasetSpec, queries, k, band int, workerCounts []int) ([]ParallelRow, error) {
	if len(workerCounts) == 0 {
		workerCounts = DefaultWorkerCounts()
	}
	ix, err := e.BuildTardis(spec, ScaledTardisConfig(spec), "parallel")
	if err != nil {
		return nil, err
	}
	qs, err := KNNQueries(spec, queries, spec.Seed)
	if err != nil {
		return nil, err
	}
	// Prime the cache so the sweep measures compute, not disk.
	if err := ix.SetQueryParallelism(1); err != nil {
		return nil, err
	}
	for _, q := range qs {
		if _, _, err := ix.KNNExact(q, k); err != nil {
			return nil, err
		}
		if _, _, err := ix.KNNDTW(q, k, band); err != nil {
			return nil, err
		}
	}

	type stream struct {
		name string
		run  func(q ts.Series) ([]core.Neighbor, time.Duration, error)
	}
	streams := []stream{
		{"exact-knn", func(q ts.Series) ([]core.Neighbor, time.Duration, error) {
			r, st, err := ix.KNNExact(q, k)
			return r, st.Duration, err
		}},
		{"dtw-knn", func(q ts.Series) ([]core.Neighbor, time.Duration, error) {
			r, st, err := ix.KNNDTW(q, k, band)
			return r, st.Duration, err
		}},
	}

	var rows []ParallelRow
	for _, s := range streams {
		var baseline []ParallelRow // keeps append order stable per stream
		var reference [][]core.Neighbor
		var baseLatency time.Duration
		for _, workers := range workerCounts {
			if err := ix.SetQueryParallelism(workers); err != nil {
				return nil, err
			}
			var total time.Duration
			for qi, q := range qs {
				res, dur, err := s.run(q)
				if err != nil {
					return nil, err
				}
				total += dur
				if workers == workerCounts[0] {
					reference = append(reference, res)
					continue
				}
				want := reference[qi]
				if len(res) != len(want) {
					return nil, fmt.Errorf("eval: %s workers=%d query %d: %d results, want %d",
						s.name, workers, qi, len(res), len(want))
				}
				for i := range want {
					if res[i] != want[i] {
						return nil, fmt.Errorf("eval: %s workers=%d query %d: result %d = %+v, want %+v",
							s.name, workers, qi, i, res[i], want[i])
					}
				}
			}
			row := ParallelRow{
				Dataset:    string(spec.Kind),
				Query:      s.name,
				Workers:    workers,
				Queries:    len(qs),
				AvgLatency: total / time.Duration(len(qs)),
			}
			if workers == workerCounts[0] {
				baseLatency = row.AvgLatency
			}
			if row.AvgLatency > 0 {
				row.Speedup = float64(baseLatency) / float64(row.AvgLatency)
			}
			baseline = append(baseline, row)
		}
		rows = append(rows, baseline...)
	}
	if err := ix.SetQueryParallelism(0); err != nil {
		return nil, err
	}
	return rows, nil
}

// ReportParallel prints the scaling table paper-style.
func ReportParallel(w io.Writer, rows []ParallelRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.Query, fmt.Sprint(r.Workers), fmt.Sprint(r.Queries),
			Dur(r.AvgLatency), fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	PrintTable(w, "Intra-query parallelism: warm-cache scaling vs per-query workers",
		[]string{"dataset", "query", "workers", "queries", "avg latency", "speedup"}, cells)
	fmt.Fprintf(w, "GOMAXPROCS=%d; answers verified identical across all worker counts\n",
		runtime.GOMAXPROCS(0))
}
