// Package eval contains the experiment harness reproducing every figure of
// the TARDIS paper's evaluation (§VI): dataset preparation, query workload
// generation, index builds for both systems, and one runner per figure
// returning typed result rows. The root bench_test.go and cmd/tardis-bench
// are thin wrappers over these runners.
package eval

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/dpisax"
	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// DatasetSpec identifies one generated dataset instance.
type DatasetSpec struct {
	Kind      dataset.Kind
	SeriesLen int
	N         int64
	Seed      int64
	BlockRecs int64
}

// String names the spec for directory keys and reports.
func (s DatasetSpec) String() string {
	return fmt.Sprintf("%s-l%d-n%d-s%d-b%d", s.Kind, s.SeriesLen, s.N, s.Seed, s.BlockRecs)
}

// Env carries the shared experiment environment: the execution substrate and
// a working directory caching generated stores and built indexes so sweeps
// do not regenerate identical datasets.
type Env struct {
	Cluster *cluster.Cluster
	WorkDir string
}

// NewEnv creates an experiment environment rooted at workDir.
func NewEnv(workers int, workDir string) (*Env, error) {
	cl, err := cluster.New(cluster.Config{Workers: workers})
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, fmt.Errorf("eval: creating work dir: %w", err)
	}
	return &Env{Cluster: cl, WorkDir: workDir}, nil
}

// Dataset returns the store for a spec, generating it on first use.
func (e *Env) Dataset(spec DatasetSpec) (*storage.Store, error) {
	dir := filepath.Join(e.WorkDir, "datasets", spec.String())
	if st, err := storage.Open(dir); err == nil {
		return st, nil
	}
	g, err := dataset.New(spec.Kind, spec.SeriesLen)
	if err != nil {
		return nil, err
	}
	return dataset.WriteStore(g, spec.Seed, spec.N, dir, spec.BlockRecs, true)
}

// BuildTardis builds a fresh TARDIS index for the spec into a unique
// directory under the work dir.
func (e *Env) BuildTardis(spec DatasetSpec, cfg core.Config, tag string) (*core.Index, error) {
	src, err := e.Dataset(spec)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(e.WorkDir, "tardis", spec.String()+"-"+tag)
	if err := os.RemoveAll(dir); err != nil {
		return nil, err
	}
	return core.Build(e.Cluster, src, dir, cfg)
}

// BuildBaseline builds a fresh DPiSAX index for the spec.
func (e *Env) BuildBaseline(spec DatasetSpec, cfg dpisax.Config, tag string) (*dpisax.Index, error) {
	src, err := e.Dataset(spec)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(e.WorkDir, "dpisax", spec.String()+"-"+tag)
	if err := os.RemoveAll(dir); err != nil {
		return nil, err
	}
	return dpisax.Build(e.Cluster, src, dir, cfg)
}

// ScaledTardisConfig returns the paper's Table II configuration with the
// partition capacity scaled to the dataset size so builds produce a sensible
// partition count at any scale (the paper sizes partitions to HDFS blocks).
// L-MaxSize scales with the capacity, preserving the paper's ratio of
// partition size to local leaf size so local trees have real depth.
func ScaledTardisConfig(spec DatasetSpec) core.Config {
	cfg := core.DefaultConfig()
	cfg.GMaxSize = scaledCapacity(spec.N)
	cfg.LMaxSize = scaledLeaf(cfg.GMaxSize)
	return cfg
}

// ScaledBaselineConfig is the baseline analogue of ScaledTardisConfig.
func ScaledBaselineConfig(spec DatasetSpec) dpisax.Config {
	cfg := dpisax.DefaultConfig()
	cfg.GMaxSize = scaledCapacity(spec.N)
	cfg.LMaxSize = scaledLeaf(cfg.GMaxSize)
	return cfg
}

// scaledLeaf keeps the paper's partition:leaf ratio (110k:1000 ≈ 100:1),
// floored so leaves still batch a handful of records.
func scaledLeaf(capacity int64) int64 {
	l := capacity / 20
	if l < 8 {
		l = 8
	}
	return l
}

// scaledCapacity targets roughly 20-40 partitions per dataset, mirroring the
// paper's ratio of dataset size to HDFS-block partitions.
func scaledCapacity(n int64) int64 {
	c := n / 30
	if c < 200 {
		c = 200
	}
	return c
}

// QuerySet is a labeled query workload: half drawn from the dataset (the
// paper's "existing" queries) and half guaranteed absent.
type QuerySet struct {
	Existing []ts.Series
	Absent   []ts.Series
}

// Queries builds the paper's exact-match workload for a dataset spec: count
// queries, 50% randomly selected from the dataset and 50% that do not exist
// in it (fresh draws from the same generator under a disjoint seed,
// perturbed) (§VI-C1).
func Queries(spec DatasetSpec, count int, seed int64) (QuerySet, error) {
	g, err := dataset.New(spec.Kind, spec.SeriesLen)
	if err != nil {
		return QuerySet{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	var qs QuerySet
	half := count / 2
	for i := 0; i < half; i++ {
		rid := rng.Int63n(spec.N)
		rec := dataset.Record(g, spec.Seed, rid)
		qs.Existing = append(qs.Existing, rec.Values.ZNormalize())
	}
	for i := count - half; i > 0; i-- {
		// A different generation seed yields series not in the dataset; a
		// small perturbation makes collisions impossible in practice.
		rec := dataset.Record(g, spec.Seed+1_000_003, int64(i))
		v := rec.Values
		v[rng.Intn(len(v))] += 0.5 + rng.Float64()
		qs.Absent = append(qs.Absent, v.ZNormalize())
	}
	return qs, nil
}

// KNNQueries builds the kNN workload: count query series drawn from the same
// distribution but not present in the dataset (the paper queries with series
// of the same length; using off-dataset queries avoids trivial self matches
// dominating recall).
func KNNQueries(spec DatasetSpec, count int, seed int64) ([]ts.Series, error) {
	g, err := dataset.New(spec.Kind, spec.SeriesLen)
	if err != nil {
		return nil, err
	}
	out := make([]ts.Series, count)
	for i := range out {
		rec := dataset.Record(g, seed+2_000_003, int64(i))
		out[i] = rec.Values.ZNormalize()
	}
	return out, nil
}
