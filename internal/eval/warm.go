package eval

import (
	"fmt"
	"io"
	"time"
)

// The warm-query experiment: the paper's latency analysis (§V-A) charges
// every query the partition-load cost, because Spark executors hold no state
// between queries. A resident partition cache changes that economics for
// repeated workloads — this figure quantifies it by running the same query
// stream against one index cold (cache disabled, per-record decode) and warm
// (cache enabled and primed), and attributing the gap to cache hits.

// WarmRow is one row of the warm-vs-cold cache comparison.
type WarmRow struct {
	Dataset     string
	Strategy    string
	Mode        string // "cold" or "warm"
	Queries     int
	AvgLatency  time.Duration
	CacheHits   int
	CacheMisses int
	DiskReads   int64
}

// WarmCache runs the warm-vs-cold experiment for one dataset spec: a fixed
// kNN query stream, first with caching disabled, then with the cache enabled
// and primed by one priming pass.
func WarmCache(e *Env, spec DatasetSpec, queries, k int) ([]WarmRow, error) {
	ix, err := e.BuildTardis(spec, ScaledTardisConfig(spec), "warm")
	if err != nil {
		return nil, err
	}
	qs, err := KNNQueries(spec, queries, spec.Seed)
	if err != nil {
		return nil, err
	}

	run := func(mode string) (WarmRow, error) {
		row := WarmRow{Dataset: string(spec.Kind), Strategy: "mpa", Mode: mode, Queries: len(qs)}
		ix.Store.Stats.Reset()
		var total time.Duration
		for _, q := range qs {
			_, st, err := ix.KNNMultiPartition(q, k)
			if err != nil {
				return row, err
			}
			total += st.Duration
			row.CacheHits += st.CacheHits
			row.CacheMisses += st.CacheMisses
		}
		row.AvgLatency = total / time.Duration(len(qs))
		row.DiskReads = ix.Store.Stats.PartitionsRead()
		return row, nil
	}

	// Cold: caching disabled, every load decodes from disk.
	if err := ix.SetCacheBudget(-1); err != nil {
		return nil, err
	}
	cold, err := run("cold")
	if err != nil {
		return nil, err
	}
	// Warm: cache on, primed by one full pass over the stream.
	if err := ix.SetCacheBudget(0); err != nil {
		return nil, err
	}
	for _, q := range qs {
		if _, _, err := ix.KNNMultiPartition(q, k); err != nil {
			return nil, err
		}
	}
	warm, err := run("warm")
	if err != nil {
		return nil, err
	}
	return []WarmRow{cold, warm}, nil
}

// ReportWarm prints the warm-vs-cold table plus the headline speedup.
func ReportWarm(w io.Writer, rows []WarmRow) {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.Strategy, r.Mode, fmt.Sprint(r.Queries), Dur(r.AvgLatency),
			fmt.Sprint(r.CacheHits), fmt.Sprint(r.CacheMisses), fmt.Sprint(r.DiskReads),
		})
	}
	PrintTable(w, "Warm queries: resident partition cache vs per-query decode",
		[]string{"dataset", "strategy", "mode", "queries", "avg latency", "cache hits", "cache misses", "disk reads"}, cells)
	for i := 0; i+1 < len(rows); i += 2 {
		cold, warm := rows[i], rows[i+1]
		if warm.AvgLatency > 0 {
			fmt.Fprintf(w, "%s: warm speedup %.1fx (disk reads %d -> %d)\n",
				cold.Dataset, float64(cold.AvgLatency)/float64(warm.AvgLatency),
				cold.DiskReads, warm.DiskReads)
		}
	}
}
