package eval

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// PrintTable renders rows as an aligned plain-text table, the output format
// of cmd/tardis-bench and the bench logs.
func PrintTable(w io.Writer, title string, headers []string, rows [][]string) {
	if title != "" {
		fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(headers)
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// Dur formats a duration for report tables, keeping three significant
// digits: microsecond precision below 10ms, millisecond precision above.
func Dur(d time.Duration) string {
	if d < 10*time.Millisecond {
		return d.Round(time.Microsecond).String()
	}
	return d.Round(time.Millisecond).String()
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Bytes formats a byte count with a binary unit.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// ReportFig9 renders Fig. 9 rows.
func ReportFig9(w io.Writer, rows []Fig9Row) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, fmt.Sprint(r.N), fmt.Sprint(r.SeriesLen), fmt.Sprint(r.Distinct),
			Pct(r.TopShare), Pct(r.Top10), fmt.Sprintf("%.4f", r.GiniLike),
		})
	}
	PrintTable(w, "Fig 9: dataset signature distribution (skew spectrum)",
		[]string{"dataset", "n", "len", "distinct-sigs", "top-1 share", "top-10 share", "1-sum(p^2)"}, out)
}

// ReportFig10 renders Fig. 10 rows.
func ReportFig10(w io.Writer, rows []Fig10Row) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.System, r.Dataset, fmt.Sprint(r.N), Dur(r.GlobalTime), Dur(r.LocalTime),
			Dur(r.Total), fmt.Sprint(r.Partitions),
		})
	}
	PrintTable(w, "Fig 10: clustered index construction time",
		[]string{"system", "dataset", "n", "global", "local", "total", "partitions"}, out)
}

// ReportFig11 renders Fig. 11 rows.
func ReportFig11(w io.Writer, rows []Fig11Row) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.System, r.Dataset, fmt.Sprint(r.N), Dur(r.SampleConvert), Dur(r.NodeStats),
			Dur(r.BuildTree), Dur(r.PartitionAsgn), Dur(r.GlobalTotal),
		})
	}
	PrintTable(w, "Fig 11: global index construction breakdown",
		[]string{"system", "dataset", "n", "sample+convert", "node-stats", "build-tree", "partition-assign", "total"}, out)
}

// ReportFig12 renders Fig. 12 rows.
func ReportFig12(w io.Writer, rows []Fig12Row) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprint(r.N), Dur(r.WithBloom), Dur(r.NoBloom), Dur(r.BloomStage), Bytes(r.BloomBytes),
		})
	}
	PrintTable(w, "Fig 12: Bloom filter index construction overhead (RandomWalk)",
		[]string{"n", "with-bloom total", "no-bloom total", "bloom stage", "bloom size"}, out)
}

// ReportFig13 renders Fig. 13 rows.
func ReportFig13(w io.Writer, rows []Fig13Row) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.System, r.Dataset, fmt.Sprint(r.N), Bytes(r.GlobalBytes), Bytes(r.LocalBytes),
		})
	}
	PrintTable(w, "Fig 13: index sizes",
		[]string{"system", "dataset", "n", "global index", "local index"}, out)
}

// ReportFig14 renders Fig. 14 rows.
func ReportFig14(w io.Writer, rows []Fig14Row) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Variant, r.Dataset, fmt.Sprint(r.N), Dur(r.AvgLatency),
			fmt.Sprintf("%.2f", r.AvgPartitionLoad), Pct(r.Recall),
		})
	}
	PrintTable(w, "Fig 14: exact-match average query time (50% existing / 50% absent)",
		[]string{"variant", "dataset", "n", "avg latency", "avg partition loads", "recall"}, out)
}

// ReportKNN renders Fig. 15/16 rows.
func ReportKNN(w io.Writer, title string, rows []KNNRow) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Strategy, r.Dataset, fmt.Sprint(r.N), fmt.Sprint(r.K),
			Pct(r.Recall), fmt.Sprintf("%.3f", r.ErrorRatio), Dur(r.AvgLatency),
		})
	}
	PrintTable(w, title,
		[]string{"strategy", "dataset", "n", "k", "recall", "error-ratio", "avg latency"}, out)
}

// ReportFig17 renders Fig. 17 rows.
func ReportFig17(w io.Writer, rows []Fig17Row) {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, Pct(r.SamplePct), Dur(r.GlobalBuild), Bytes(r.GlobalBytes),
			fmt.Sprintf("%.6f", r.PartitionMSE), fmt.Sprintf("%.3f", r.ErrorRatioMPA),
		})
	}
	PrintTable(w, "Fig 17: impact of sampling percentage",
		[]string{"dataset", "sample", "global build", "global size", "partition MSE", "error-ratio (MPA)"}, out)
}
