// Package dataset provides seeded generators reproducing the four evaluation
// datasets of the TARDIS paper (§VI-A): the RandomWalk benchmark, and
// synthetic equivalents of the Texmex SIFT corpus, the UCSC DNA assembly
// series, and the NOAA temperature series. The real corpora are multi-TB
// downloads; the generators reproduce the properties the paper's experiments
// depend on — series length and, crucially, the skew spectrum of the iSAX
// signature distribution shown in its Fig. 9 (RandomWalk nearly uniform,
// NOAA highly clustered) — so index shape and query accuracy exercise the
// same code paths.
//
// All generators are deterministic given a seed, and generation is
// block-parallel friendly: record i's content depends only on (seed, i).
package dataset

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/tardisdb/tardis/internal/storage"
	"github.com/tardisdb/tardis/internal/ts"
)

// Kind identifies one of the four paper datasets.
type Kind string

const (
	// RandomWalk is the standard benchmark: cumulative sums of unit
	// Gaussian steps; 256 points in the paper.
	RandomWalk Kind = "randomwalk"
	// Texmex mimics SIFT descriptor vectors: non-negative, clustered,
	// heavy-tailed; 128 points in the paper.
	Texmex Kind = "texmex"
	// DNA mimics series derived from genome assemblies via the cumulative
	// base-weight transform of iSAX 2.0; 192 points in the paper.
	DNA Kind = "dna"
	// NOAA mimics station temperature series: strong shared seasonality
	// with station offsets, giving a highly skewed signature distribution;
	// 64 points in the paper.
	NOAA Kind = "noaa"
)

// Kinds lists all supported dataset kinds in paper order.
func Kinds() []Kind { return []Kind{RandomWalk, Texmex, DNA, NOAA} }

// DefaultLen returns the paper's series length for the kind.
func DefaultLen(k Kind) int {
	switch k {
	case RandomWalk:
		return 256
	case Texmex:
		return 128
	case DNA:
		return 192
	case NOAA:
		return 64
	}
	return 0
}

// Generator produces time series of a fixed length. Implementations must be
// deterministic functions of the per-record RNG they are handed.
type Generator interface {
	// Kind returns the dataset kind.
	Kind() Kind
	// SeriesLen returns the fixed series length.
	SeriesLen() int
	// Generate produces one series using the supplied RNG.
	Generate(rng *rand.Rand) ts.Series
}

// New returns a generator for the kind with the given series length (use
// DefaultLen for the paper's lengths).
func New(kind Kind, seriesLen int) (Generator, error) {
	if seriesLen < 4 {
		return nil, fmt.Errorf("dataset: series length %d too short", seriesLen)
	}
	switch kind {
	case RandomWalk:
		return &randomWalkGen{n: seriesLen}, nil
	case Texmex:
		return &texmexGen{n: seriesLen}, nil
	case DNA:
		return &dnaGen{n: seriesLen}, nil
	case NOAA:
		return &noaaGen{n: seriesLen}, nil
	default:
		return nil, fmt.Errorf("dataset: unknown kind %q", kind)
	}
}

// recordRNG derives the deterministic RNG for record rid under seed.
func recordRNG(seed, rid int64) *rand.Rand {
	h := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(rid)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	return rand.New(rand.NewSource(int64(h)))
}

// Record generates record rid of the dataset identified by (g, seed).
func Record(g Generator, seed, rid int64) ts.Record {
	return ts.Record{RID: rid, Values: g.Generate(recordRNG(seed, rid))}
}

// Stream generates records 0..n-1 in order through fn.
func Stream(g Generator, seed int64, n int64, fn func(ts.Record) error) error {
	for rid := int64(0); rid < n; rid++ {
		if err := fn(Record(g, seed, rid)); err != nil {
			return err
		}
	}
	return nil
}

// WriteStore generates n records into a new store at dir, split into blocks
// of blockRecords each (the HDFS-block stand-in). When normalize is true
// each series is z-normalized before writing, matching the paper's setup.
func WriteStore(g Generator, seed int64, n int64, dir string, blockRecords int64, normalize bool) (*storage.Store, error) {
	if blockRecords < 1 {
		return nil, fmt.Errorf("dataset: block size must be positive, got %d", blockRecords)
	}
	st, err := storage.Create(dir, g.SeriesLen())
	if err != nil {
		return nil, err
	}
	pid := 0
	for start := int64(0); start < n; start += blockRecords {
		end := start + blockRecords
		if end > n {
			end = n
		}
		w, err := st.NewWriter(pid)
		if err != nil {
			return nil, err
		}
		for rid := start; rid < end; rid++ {
			rec := Record(g, seed, rid)
			if normalize {
				rec.Values.ZNormalizeInPlace()
			}
			if err := w.Write(rec); err != nil {
				return nil, errors.Join(err, w.Close())
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		pid++
	}
	if err := st.Sync(); err != nil {
		return nil, err
	}
	return st, nil
}

// ---- RandomWalk ----

type randomWalkGen struct{ n int }

func (g *randomWalkGen) Kind() Kind     { return RandomWalk }
func (g *randomWalkGen) SeriesLen() int { return g.n }

func (g *randomWalkGen) Generate(rng *rand.Rand) ts.Series {
	s := make(ts.Series, g.n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s
}

// ---- Texmex (SIFT-like) ----

// texmexGen mimics SIFT descriptors: 128 non-negative bins arranged as
// gradient histograms. Descriptors cluster around a moderate number of
// visual-word prototypes, producing mild skew in signature space.
type texmexGen struct{ n int }

func (g *texmexGen) Kind() Kind     { return Texmex }
func (g *texmexGen) SeriesLen() int { return g.n }

const texmexPrototypes = 48

func (g *texmexGen) Generate(rng *rand.Rand) ts.Series {
	// Pick a visual-word prototype; derive its shape deterministically from
	// its id so all records share the same prototype set without global
	// state. Descriptors of the same visual word differ only by small
	// per-bin noise, so their z-normalized shapes — and hence their coarse
	// iSAX signatures — cluster, placing Texmex between RandomWalk and NOAA
	// on the paper's skew spectrum.
	proto := rng.Intn(texmexPrototypes)
	prng := rand.New(rand.NewSource(int64(proto)*2654435761 + 12345))
	s := make(ts.Series, g.n)
	for i := range s {
		base := prng.Float64() * 100 // prototype bin magnitude
		noise := math.Abs(rng.NormFloat64()) * 8
		s[i] = base + noise
		// SIFT clipping: bins saturate.
		if s[i] > 180 {
			s[i] = 180
		}
	}
	return s
}

// ---- DNA ----

// dnaGen follows the iSAX 2.0 conversion: a genome string becomes a
// cumulative series where each base shifts the level (A:+2, G:+1, C:-1,
// T:-2), cut into fixed-length subsequences. Regional GC bias makes nearby
// subsequences drift similarly, yielding moderate skew.
type dnaGen struct{ n int }

func (g *dnaGen) Kind() Kind     { return DNA }
func (g *dnaGen) SeriesLen() int { return g.n }

func (g *dnaGen) Generate(rng *rand.Rand) ts.Series {
	// GC bias for this "region" of the genome.
	gcBias := 0.35 + 0.3*rng.Float64()
	s := make(ts.Series, g.n)
	v := 0.0
	for i := range s {
		var step float64
		if rng.Float64() < gcBias { // G or C
			if rng.Float64() < 0.5 {
				step = 1 // G
			} else {
				step = -1 // C
			}
		} else { // A or T
			if rng.Float64() < 0.5 {
				step = 2 // A
			} else {
				step = -2 // T
			}
		}
		v += step
		s[i] = v
	}
	return s
}

// ---- NOAA ----

// noaaGen mimics station temperature series: a strong shared seasonal cycle,
// a station-specific offset and amplitude, and small observation noise. The
// shared cycle means most series z-normalize to nearly the same shape — the
// highly skewed end of the paper's Fig. 9 spectrum.
type noaaGen struct{ n int }

func (g *noaaGen) Kind() Kind     { return NOAA }
func (g *noaaGen) SeriesLen() int { return g.n }

func (g *noaaGen) Generate(rng *rand.Rand) ts.Series {
	offset := rng.NormFloat64() * 10   // station latitude effect
	amp := 8 + rng.Float64()*6         // seasonal amplitude
	phase := rng.NormFloat64() * 0.15  // small hemisphere/siting shift
	trend := rng.NormFloat64() * 0.005 // slight warming/cooling drift
	s := make(ts.Series, g.n)
	for i := range s {
		t := float64(i) / float64(g.n)
		s[i] = offset + amp*math.Sin(2*math.Pi*(t+phase)) + trend*float64(i) + rng.NormFloat64()*0.8
	}
	return s
}
