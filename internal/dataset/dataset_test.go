package dataset

import (
	"math"
	"testing"

	"github.com/tardisdb/tardis/internal/isaxt"
	"github.com/tardisdb/tardis/internal/ts"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(RandomWalk, 2); err == nil {
		t.Error("too-short length should fail")
	}
	if _, err := New(Kind("bogus"), 64); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestDefaultLens(t *testing.T) {
	want := map[Kind]int{RandomWalk: 256, Texmex: 128, DNA: 192, NOAA: 64}
	for k, n := range want {
		if got := DefaultLen(k); got != n {
			t.Errorf("DefaultLen(%s) = %d, want %d", k, got, n)
		}
	}
	if DefaultLen(Kind("bogus")) != 0 {
		t.Error("unknown kind should default to 0")
	}
	if len(Kinds()) != 4 {
		t.Error("Kinds should list 4 datasets")
	}
}

func TestGeneratorsBasic(t *testing.T) {
	for _, k := range Kinds() {
		g, err := New(k, DefaultLen(k))
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if g.Kind() != k {
			t.Errorf("%s: Kind() = %s", k, g.Kind())
		}
		if g.SeriesLen() != DefaultLen(k) {
			t.Errorf("%s: SeriesLen() = %d", k, g.SeriesLen())
		}
		rec := Record(g, 1, 0)
		if len(rec.Values) != g.SeriesLen() {
			t.Errorf("%s: generated length %d", k, len(rec.Values))
		}
		for i, v := range rec.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite value at %d", k, i)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, k := range Kinds() {
		g, _ := New(k, 64)
		a := Record(g, 7, 123)
		b := Record(g, 7, 123)
		if !ts.Equal(a.Values, b.Values) {
			t.Errorf("%s: record not deterministic", k)
		}
		c := Record(g, 8, 123)
		if ts.Equal(a.Values, c.Values) {
			t.Errorf("%s: different seeds should differ", k)
		}
		d := Record(g, 7, 124)
		if ts.Equal(a.Values, d.Values) {
			t.Errorf("%s: different rids should differ", k)
		}
	}
}

func TestRecordIndependenceOfOrder(t *testing.T) {
	// Record(rid) must not depend on generating earlier records — the
	// property that makes block-parallel generation correct.
	g, _ := New(RandomWalk, 32)
	direct := Record(g, 1, 500)
	var viaStream ts.Record
	err := Stream(g, 1, 501, func(r ts.Record) error {
		if r.RID == 500 {
			viaStream = r
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Equal(direct.Values, viaStream.Values) {
		t.Error("record content depends on generation order")
	}
}

func TestTexmexNonNegative(t *testing.T) {
	g, _ := New(Texmex, 128)
	for rid := int64(0); rid < 50; rid++ {
		for _, v := range Record(g, 3, rid).Values {
			if v < 0 {
				t.Fatal("SIFT-like values must be non-negative")
			}
			if v > 180 {
				t.Fatal("SIFT-like values must saturate at 180")
			}
		}
	}
}

func TestDNAIntegerSteps(t *testing.T) {
	g, _ := New(DNA, 192)
	rec := Record(g, 4, 0)
	prev := 0.0
	for _, v := range rec.Values {
		step := math.Abs(v - prev)
		if step != 1 && step != 2 {
			t.Fatalf("DNA step %v not in {1,2}", step)
		}
		prev = v
	}
}

// The skew spectrum of the paper's Fig. 9: NOAA's signature distribution is
// far more concentrated than RandomWalk's. We measure the fraction of mass
// in the single most frequent 1-byte-cardinality signature.
func TestSkewSpectrum(t *testing.T) {
	codec := isaxt.MustNewCodec(8)
	topShare := func(k Kind) float64 {
		g, _ := New(k, 64)
		freq := map[isaxt.Signature]int{}
		const n = 2000
		for rid := int64(0); rid < n; rid++ {
			rec := Record(g, 5, rid)
			sig, err := codec.FromSeries(rec.Values.ZNormalize(), 1)
			if err != nil {
				t.Fatal(err)
			}
			freq[sig]++
		}
		max := 0
		for _, c := range freq {
			if c > max {
				max = c
			}
		}
		return float64(max) / n
	}
	rw := topShare(RandomWalk)
	noaa := topShare(NOAA)
	if noaa < rw {
		t.Errorf("NOAA top-signature share %.3f should exceed RandomWalk %.3f", noaa, rw)
	}
	if noaa < 0.3 {
		t.Errorf("NOAA should be highly clustered, top share %.3f", noaa)
	}
}

func TestWriteStore(t *testing.T) {
	g, _ := New(RandomWalk, 32)
	dir := t.TempDir()
	st, err := WriteStore(g, 1, 95, dir, 20, true)
	if err != nil {
		t.Fatal(err)
	}
	pids, err := st.Partitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(pids) != 5 { // 95 records in blocks of 20 => 5 blocks
		t.Errorf("blocks = %d, want 5", len(pids))
	}
	total, err := st.TotalRecords()
	if err != nil || total != 95 {
		t.Errorf("total = %d, %v", total, err)
	}
	// Normalized content: mean ~0.
	recs, err := st.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	if m := recs[0].Values.Mean(); math.Abs(m) > 1e-9 {
		t.Errorf("normalized record mean = %v", m)
	}
	// Invalid block size.
	if _, err := WriteStore(g, 1, 10, t.TempDir(), 0, true); err == nil {
		t.Error("block size 0 should fail")
	}
}

func TestWriteStoreRaw(t *testing.T) {
	g, _ := New(NOAA, 32)
	st, err := WriteStore(g, 2, 10, t.TempDir(), 10, false)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.ReadPartition(0)
	if err != nil {
		t.Fatal(err)
	}
	want := Record(g, 2, 0)
	if !ts.Equal(recs[0].Values, want.Values) {
		t.Error("raw store should hold unnormalized values")
	}
}
