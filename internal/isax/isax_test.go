package isax

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tardisdb/tardis/internal/ts"
)

func randomWord(rng *rand.Rand, w, bits int) Word {
	paa := make(ts.Series, w)
	for i := range paa {
		paa[i] = rng.NormFloat64()
	}
	return FromPAA(paa, bits)
}

func TestFromPAA(t *testing.T) {
	paa := ts.Series{-1.5, -0.4, 0.3, 1.5}
	w := FromPAA(paa, 2)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if w.Symbols[i] != want[i] || w.Bits[i] != 2 {
			t.Errorf("segment %d: got (%d,%d), want (%d,2)", i, w.Symbols[i], w.Bits[i], want[i])
		}
	}
}

func TestFromSeries(t *testing.T) {
	s := make(ts.Series, 16)
	for i := range s {
		s[i] = float64(i)
	}
	w, err := FromSeries(s.ZNormalize(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 4 {
		t.Fatalf("word length = %d, want 4", w.Len())
	}
	// Monotone increasing series => non-decreasing symbols.
	for i := 1; i < 4; i++ {
		if w.Symbols[i] < w.Symbols[i-1] {
			t.Errorf("symbols should be non-decreasing for an increasing series: %v", w.Symbols)
		}
	}
	if _, err := FromSeries(ts.Series{1}, 4, 3); err == nil {
		t.Error("expected error for series shorter than word length")
	}
}

func TestDemoteChar(t *testing.T) {
	w := Word{Symbols: []int{6, 5}, Bits: []int{3, 3}} // 110, 101
	d := w.DemoteChar(0, 1)
	if d.Symbols[0] != 1 || d.Bits[0] != 1 {
		t.Errorf("demote 110(3b)->1b: got %d.%d, want 1.1", d.Symbols[0], d.Bits[0])
	}
	// Original unchanged.
	if w.Symbols[0] != 6 || w.Bits[0] != 3 {
		t.Error("DemoteChar mutated receiver")
	}
}

func TestDemoteCharPanicsOnPromote(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when promoting via DemoteChar")
		}
	}()
	w := Word{Symbols: []int{1}, Bits: []int{1}}
	w.DemoteChar(0, 2)
}

func TestDemoteTo(t *testing.T) {
	w := Word{Symbols: []int{6, 5, 3}, Bits: []int{3, 3, 3}}
	d, conv := w.DemoteTo([]int{1, 3, 2})
	if conv != 2 {
		t.Errorf("conversions = %d, want 2", conv)
	}
	if d.Symbols[0] != 1 || d.Symbols[1] != 5 || d.Symbols[2] != 1 {
		t.Errorf("demoted symbols = %v", d.Symbols)
	}
}

func TestCovers(t *testing.T) {
	full := Word{Symbols: []int{6, 5, 3}, Bits: []int{3, 3, 3}}
	node := Word{Symbols: []int{1, 2, 0}, Bits: []int{1, 2, 1}} // 1, 10, 0
	ok, conv := node.Covers(full)
	if !ok {
		t.Error("node should cover full word")
	}
	if conv != 3 {
		t.Errorf("conversions = %d, want 3", conv)
	}
	miss := Word{Symbols: []int{0, 2, 0}, Bits: []int{1, 2, 1}}
	if ok, _ := miss.Covers(full); ok {
		t.Error("mismatched first char should not cover")
	}
	// Coarser "other" cannot be covered by finer node.
	coarse := Word{Symbols: []int{1, 1, 0}, Bits: []int{1, 1, 1}}
	fine := Word{Symbols: []int{2, 2, 0}, Bits: []int{2, 2, 2}}
	if ok, _ := fine.Covers(coarse); ok {
		t.Error("finer node cannot cover coarser word")
	}
	if ok, _ := node.Covers(Word{Symbols: []int{1}, Bits: []int{1}}); ok {
		t.Error("length mismatch should not cover")
	}
}

func TestSplitCharAndChildBit(t *testing.T) {
	parent := Word{Symbols: []int{1, 0}, Bits: []int{1, 1}}
	lo, hi := parent.SplitChar(0)
	if lo.Symbols[0] != 2 || lo.Bits[0] != 2 {
		t.Errorf("lo child = %d.%d, want 2.2", lo.Symbols[0], lo.Bits[0])
	}
	if hi.Symbols[0] != 3 || hi.Bits[0] != 2 {
		t.Errorf("hi child = %d.%d, want 3.2", hi.Symbols[0], hi.Bits[0])
	}
	// A full word 110(3b) on segment 0 splits from a 1-bit parent into bit 1.
	full := Word{Symbols: []int{6, 0}, Bits: []int{3, 3}}
	if b := ChildBit(full, 0, 1); b != 1 {
		t.Errorf("ChildBit = %d, want 1", b)
	}
	full2 := Word{Symbols: []int{4, 0}, Bits: []int{3, 3}} // 100
	if b := ChildBit(full2, 0, 1); b != 0 {
		t.Errorf("ChildBit = %d, want 0", b)
	}
}

func TestChildBitPanicsWhenTooCoarse(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ChildBit(Word{Symbols: []int{1}, Bits: []int{1}}, 0, 1)
}

func TestKeyRoundTrip(t *testing.T) {
	w := Word{Symbols: []int{6, 5, 0}, Bits: []int{3, 3, 1}}
	got, err := ParseKey(w.Key())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(w) {
		t.Errorf("round trip = %v, want %v", got, w)
	}
}

func TestParseKeyErrors(t *testing.T) {
	for _, k := range []string{"", "3", "3.x", "x.2", "9.2", "-1.2", "3.0", "3.99"} {
		if _, err := ParseKey(k); err == nil {
			t.Errorf("ParseKey(%q) should fail", k)
		}
	}
}

func TestString(t *testing.T) {
	w := Word{Symbols: []int{6, 1}, Bits: []int{3, 1}}
	if got := w.String(); got != "[110.3 1.1]" {
		t.Errorf("String = %q", got)
	}
}

// Property: key round trip holds for random words.
func TestKeyRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWord(rng, 8, 1+rng.Intn(8))
		got, err := ParseKey(w.Key())
		return err == nil && got.Equal(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a word demoted to any coarser per-segment cardinalities covers
// the original word.
func TestDemoteCoversProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomWord(rng, 8, 6)
		target := make([]int, 8)
		for i := range target {
			target[i] = 1 + rng.Intn(6)
		}
		d, _ := w.DemoteTo(target)
		ok, _ := d.Covers(w)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the variable-cardinality MINDIST is a valid lower bound on the
// true Euclidean distance.
func TestMinDistPAALowerBoundProperty(t *testing.T) {
	const n, wlen = 64, 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := make(ts.Series, n), make(ts.Series, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		ed, _ := ts.EuclideanDistance(a, b)
		pa := ts.MustPAA(a, wlen)
		wb := FromPAA(ts.MustPAA(b, wlen), 8)
		// Randomly demote some segments to a variable-cardinality word.
		target := make([]int, wlen)
		for i := range target {
			target[i] = 1 + rng.Intn(8)
		}
		vb, _ := wb.DemoteTo(target)
		return vb.MinDistPAA(pa, n) <= ed+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: demoting segments can only loosen (reduce) the MINDIST bound.
func TestMinDistDemoteLoosensProperty(t *testing.T) {
	const n, wlen = 64, 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := make(ts.Series, n)
		bSeries := make(ts.Series, n)
		for i := 0; i < n; i++ {
			q[i] = rng.NormFloat64()
			bSeries[i] = rng.NormFloat64()
		}
		pq := ts.MustPAA(q, wlen)
		w := FromPAA(ts.MustPAA(bSeries, wlen), 8)
		fine := w.MinDistPAA(pq, n)
		target := make([]int, wlen)
		for i := range target {
			target[i] = 1 + rng.Intn(8)
		}
		coarse, _ := w.DemoteTo(target)
		return coarse.MinDistPAA(pq, n) <= fine+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinDistPAAZeroForCoveringRegion(t *testing.T) {
	paa := ts.Series{-1.5, 0.3}
	w := FromPAA(paa, 3)
	if d := w.MinDistPAA(paa, 16); math.Abs(d) > 1e-12 {
		t.Errorf("MINDIST of word to its own PAA = %v, want 0", d)
	}
}
