package isax

import "math"

func sqrt(v float64) float64 { return math.Sqrt(v) }

func sqrtRatio(n, w int) float64 { return math.Sqrt(float64(n) / float64(w)) }
