// Package isax implements the classic character-level variable-cardinality
// iSAX representation (Shieh & Keogh, KDD'08) used by the baseline systems
// (iSAX binary trees and DPiSAX). Each segment of a word carries its own
// cardinality, so comparing two words requires demoting the
// higher-cardinality characters segment by segment — the "expensive
// cardinality conversion" the TARDIS paper contrasts with iSAX-T's
// word-level dropRight.
package isax

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/tardisdb/tardis/internal/ts"
)

// Word is a character-level variable-cardinality iSAX word. Symbols[i] is
// the SAX region index of segment i at cardinality 2^Bits[i]. Labels are
// assigned bottom-up so demotion by one bit is a right shift of the symbol.
type Word struct {
	Symbols []int
	Bits    []int
}

// FromPAA builds a uniform-cardinality iSAX word (every segment at 2^bits)
// from a PAA vector.
func FromPAA(paa ts.Series, bits int) Word {
	syms := make([]int, len(paa))
	bs := make([]int, len(paa))
	for i, v := range paa {
		syms[i] = ts.SAXSymbol(v, bits)
		bs[i] = bits
	}
	return Word{Symbols: syms, Bits: bs}
}

// FromSeries z-independently converts a raw series to a uniform iSAX word:
// PAA at word length w, then SAX at cardinality 2^bits. The caller is
// responsible for z-normalizing first if required.
func FromSeries(s ts.Series, w, bits int) (Word, error) {
	paa, err := ts.PAA(s, w)
	if err != nil {
		return Word{}, err
	}
	return FromPAA(paa, bits), nil
}

// Len returns the word length (number of segments).
func (w Word) Len() int { return len(w.Symbols) }

// Clone returns a deep copy of the word.
func (w Word) Clone() Word {
	s := make([]int, len(w.Symbols))
	b := make([]int, len(w.Bits))
	copy(s, w.Symbols)
	copy(b, w.Bits)
	return Word{Symbols: s, Bits: b}
}

// DemoteChar returns a copy of the word with segment i demoted to `bits`
// bits of cardinality. It panics if bits exceeds the segment's current
// cardinality — demotion only loses precision, never invents it.
func (w Word) DemoteChar(i, bits int) Word {
	if bits > w.Bits[i] {
		panic(fmt.Sprintf("isax: cannot promote segment %d from %d to %d bits", i, w.Bits[i], bits))
	}
	out := w.Clone()
	out.Symbols[i] >>= uint(w.Bits[i] - bits)
	out.Bits[i] = bits
	return out
}

// DemoteTo demotes every segment of the word to the per-segment cardinality
// bits given in target, returning the demoted word and the number of
// single-character conversion operations performed. The conversion count is
// the cost the baseline pays on every comparison; TARDIS's iSAX-T replaces
// it with a single string truncation.
func (w Word) DemoteTo(target []int) (Word, int) {
	if len(target) != len(w.Bits) {
		panic(fmt.Sprintf("isax: demote target length %d != word length %d", len(target), len(w.Bits)))
	}
	out := w.Clone()
	conversions := 0
	for i, tb := range target {
		if tb > w.Bits[i] {
			panic(fmt.Sprintf("isax: cannot promote segment %d from %d to %d bits", i, w.Bits[i], tb))
		}
		if tb < w.Bits[i] {
			out.Symbols[i] >>= uint(w.Bits[i] - tb)
			out.Bits[i] = tb
			conversions++
		}
	}
	return out, conversions
}

// Covers reports whether this (typically lower-cardinality) word covers the
// given full-precision word: every segment of other, demoted to this word's
// per-segment cardinality, equals this word's symbol. It also returns the
// number of character conversions performed, mirroring the real matching
// cost of the baseline's partition-table lookup.
//
//tardis:hotpath
func (w Word) Covers(other Word) (bool, int) {
	if len(other.Symbols) != len(w.Symbols) {
		return false, 0
	}
	conversions := 0
	for i := range w.Symbols {
		ob, wb := other.Bits[i], w.Bits[i]
		if ob < wb {
			return false, conversions // other is coarser; cannot be covered
		}
		sym := other.Symbols[i]
		if ob > wb {
			sym >>= uint(ob - wb)
			conversions++
		}
		if sym != w.Symbols[i] {
			return false, conversions
		}
	}
	return true, conversions
}

// Equal reports whether two words have identical symbols and cardinalities.
func (w Word) Equal(other Word) bool {
	if len(w.Symbols) != len(other.Symbols) {
		return false
	}
	for i := range w.Symbols {
		if w.Symbols[i] != other.Symbols[i] || w.Bits[i] != other.Bits[i] {
			return false
		}
	}
	return true
}

// SplitChar returns the two children produced by promoting segment i with
// one extra bit, in symbol order (appended bit 0, then 1). The receiver must
// hold a strictly lower cardinality on segment i than the data words do.
func (w Word) SplitChar(i int) (Word, Word) {
	lo := w.Clone()
	lo.Symbols[i] = w.Symbols[i] << 1
	lo.Bits[i] = w.Bits[i] + 1
	hi := w.Clone()
	hi.Symbols[i] = w.Symbols[i]<<1 | 1
	hi.Bits[i] = w.Bits[i] + 1
	return lo, hi
}

// ChildBit returns which child (0 or 1) of a split on segment i the given
// full-precision word belongs to, given the parent's cardinality on that
// segment.
func ChildBit(full Word, i, parentBits int) int {
	shift := full.Bits[i] - (parentBits + 1)
	if shift < 0 {
		panic(fmt.Sprintf("isax: word bits %d too coarse for child of %d-bit parent", full.Bits[i], parentBits))
	}
	return (full.Symbols[i] >> uint(shift)) & 1
}

// MinDistPAA lower-bounds the Euclidean distance between the original series
// (length n) behind the query PAA and any series covered by this word, using
// each segment's own cardinality.
//
//tardis:hotpath
func (w Word) MinDistPAA(paa ts.Series, n int) float64 {
	if len(paa) != len(w.Symbols) {
		panic(fmt.Sprintf("isax: MinDistPAA length mismatch %d vs %d", len(paa), len(w.Symbols)))
	}
	var sum float64
	for i, v := range paa {
		d := ts.MinDistPAAToSymbol(v, w.Symbols[i], w.Bits[i])
		sum += d * d
	}
	return sqrtRatio(n, len(paa)) * sqrt(sum)
}

// Key returns a canonical string form usable as a map key, e.g.
// "3.2_0.1_7.3" meaning symbol.bits per segment.
func (w Word) Key() string {
	var b strings.Builder
	for i := range w.Symbols {
		if i > 0 {
			b.WriteByte('_')
		}
		b.WriteString(strconv.Itoa(w.Symbols[i]))
		b.WriteByte('.')
		b.WriteString(strconv.Itoa(w.Bits[i]))
	}
	return b.String()
}

// ParseKey parses the canonical Key form back into a Word.
func ParseKey(key string) (Word, error) {
	if key == "" {
		return Word{}, fmt.Errorf("isax: empty key")
	}
	parts := strings.Split(key, "_")
	w := Word{Symbols: make([]int, len(parts)), Bits: make([]int, len(parts))}
	for i, p := range parts {
		dot := strings.IndexByte(p, '.')
		if dot < 0 {
			return Word{}, fmt.Errorf("isax: malformed key segment %q", p)
		}
		sym, err := strconv.Atoi(p[:dot])
		if err != nil {
			return Word{}, fmt.Errorf("isax: malformed symbol in %q: %v", p, err)
		}
		bits, err := strconv.Atoi(p[dot+1:])
		if err != nil {
			return Word{}, fmt.Errorf("isax: malformed bits in %q: %v", p, err)
		}
		if bits < 1 || bits > ts.MaxCardinalityBits {
			return Word{}, fmt.Errorf("isax: bits %d out of range in %q", bits, p)
		}
		if sym < 0 || sym >= 1<<bits {
			return Word{}, fmt.Errorf("isax: symbol %d out of range for %d bits in %q", sym, bits, p)
		}
		w.Symbols[i], w.Bits[i] = sym, bits
	}
	return w, nil
}

// String renders the word in the paper's bracketed style, e.g.
// "[01.2 1.1 110.3]" with binary symbols subscripted by bit width.
func (w Word) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := range w.Symbols {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(formatBinary(w.Symbols[i], w.Bits[i]))
		b.WriteByte('.')
		b.WriteString(strconv.Itoa(w.Bits[i]))
	}
	b.WriteByte(']')
	return b.String()
}

func formatBinary(v, bits int) string {
	s := strconv.FormatInt(int64(v), 2)
	for len(s) < bits {
		s = "0" + s
	}
	return s
}
