// Package isaxt implements the iSAX-Transposition (iSAX-T) signature scheme,
// the first building block of TARDIS (paper §III-A).
//
// A SAX word at word length w and cardinality 2^b is a w×b bit matrix (one
// row of b bits per segment). iSAX-T transposes that matrix so the rows
// become bit-planes — plane p holds the p-th most significant bit of every
// segment — and hex-encodes each plane into w/4 characters. Concatenating
// planes 1..b yields a string signature with two decisive properties:
//
//  1. Word-level variable cardinality: a prefix of the signature is exactly
//     the same series' signature at a lower cardinality, so reducing the
//     cardinality from 2^hc to 2^lc is a string truncation dropping
//     n = (log2 hc − log2 lc) · w/4 characters (paper Eq. 2) — no
//     per-character bit arithmetic as in classic iSAX.
//  2. Level == prefix length: all series in the same sigTree node share a
//     signature prefix, so tree descent is plain string slicing.
package isaxt

import (
	"fmt"
	"strings"
	"sync"

	"github.com/tardisdb/tardis/internal/ts"
)

// Signature is an iSAX-T signature: the transposed, hex-encoded SAX bit
// matrix. Its length is always a multiple of w/4 where w is the word length.
// Signatures of the same word length are comparable by prefix: a shorter
// signature that prefixes a longer one covers it.
type Signature string

const hexDigits = "0123456789ABCDEF"

// Codec converts between series, SAX words, and iSAX-T signatures for a
// fixed word length. Word length must be a positive multiple of 4 so that
// each bit-plane packs into whole hex characters (the paper uses w = 8,
// giving 2 characters per plane — see its Fig. 7).
type Codec struct {
	w          int // word length (number of segments)
	planeChars int // hex characters per bit-plane: w/4

	// wordPool recycles decode buffers for MinDistPAA, which tree pruning
	// calls once per visited node — without reuse that decode dominates
	// query-path allocations.
	wordPool sync.Pool
}

// NewCodec returns a Codec for word length w. It returns an error unless w
// is a positive multiple of 4.
func NewCodec(w int) (*Codec, error) {
	if w <= 0 || w%4 != 0 {
		return nil, fmt.Errorf("isaxt: word length must be a positive multiple of 4, got %d", w)
	}
	return &Codec{w: w, planeChars: w / 4}, nil
}

// MustNewCodec is NewCodec that panics on error; for validated configs.
func MustNewCodec(w int) *Codec {
	c, err := NewCodec(w)
	if err != nil {
		panic(err)
	}
	return c
}

// WordLength returns the codec's word length w.
func (c *Codec) WordLength() int { return c.w }

// PlaneChars returns the number of hex characters contributed by one
// bit-plane (w/4).
func (c *Codec) PlaneChars() int { return c.planeChars }

// Encode converts a SAX word (region indices at cardinality 2^bits) into its
// iSAX-T signature of `bits` planes.
//
//tardis:hotpath
func (c *Codec) Encode(word []int, bits int) (Signature, error) {
	if len(word) != c.w {
		return "", fmt.Errorf("isaxt: word length %d != codec word length %d", len(word), c.w)
	}
	if bits < 1 || bits > ts.MaxCardinalityBits {
		return "", fmt.Errorf("isaxt: cardinality bits %d out of range [1, %d]", bits, ts.MaxCardinalityBits)
	}
	for i, s := range word {
		if s < 0 || s >= 1<<bits {
			return "", fmt.Errorf("isaxt: symbol %d at segment %d out of range for %d bits", s, i, bits)
		}
	}
	buf := make([]byte, bits*c.planeChars)
	pos := 0
	for p := 0; p < bits; p++ {
		// Plane p holds bit (bits-1-p) of every segment: plane 0 is the most
		// significant bit, so prefixes are low-cardinality signatures.
		shift := uint(bits - 1 - p)
		for nib := 0; nib < c.planeChars; nib++ {
			var v int
			for k := 0; k < 4; k++ {
				seg := nib*4 + k
				bit := (word[seg] >> shift) & 1
				v = v<<1 | bit
			}
			buf[pos] = hexDigits[v]
			pos++
		}
	}
	return Signature(buf), nil
}

// Decode converts a signature back into a SAX word. The cardinality is
// implied by the signature length: bits = len(sig)/(w/4).
func (c *Codec) Decode(sig Signature) ([]int, int, error) {
	word := make([]int, c.w)
	bits, err := c.decodeInto(sig, word)
	if err != nil {
		return nil, 0, err
	}
	return word, bits, nil
}

// DecodeInto decodes sig into word, a caller-owned buffer of length c.w that
// is fully overwritten, and returns the cardinality bit count. It is the
// allocation-free Decode used by batch refinement, which scatters decoded
// words into struct-of-arrays layouts.
func (c *Codec) DecodeInto(sig Signature, word []int) (int, error) {
	if len(word) != c.w {
		return 0, fmt.Errorf("isaxt: decode buffer length %d != word length %d", len(word), c.w)
	}
	return c.decodeInto(sig, word)
}

// decodeInto decodes sig into word, a caller-owned buffer of length c.w that
// is fully overwritten. It returns the cardinality bit count.
//
//tardis:hotpath
func (c *Codec) decodeInto(sig Signature, word []int) (int, error) {
	bits, err := c.Bits(sig)
	if err != nil {
		return 0, err
	}
	for i := range word {
		word[i] = 0
	}
	for p := 0; p < bits; p++ {
		plane := sig[p*c.planeChars : (p+1)*c.planeChars]
		for nib := 0; nib < c.planeChars; nib++ {
			v, ok := hexValue(plane[nib])
			if !ok {
				return 0, fmt.Errorf("isaxt: invalid hex character %q in signature %q", plane[nib], sig)
			}
			for k := 0; k < 4; k++ {
				seg := nib*4 + k
				bit := (v >> uint(3-k)) & 1
				word[seg] = word[seg]<<1 | bit
			}
		}
	}
	return bits, nil
}

// getWord borrows a decode buffer from the pool; putWord returns it.
func (c *Codec) getWord() *[]int {
	if v := c.wordPool.Get(); v != nil {
		return v.(*[]int)
	}
	w := make([]int, c.w)
	return &w
}

func (c *Codec) putWord(w *[]int) { c.wordPool.Put(w) }

// Bits returns the cardinality bit count encoded by the signature length,
// validating that the length is a whole number of planes.
func (c *Codec) Bits(sig Signature) (int, error) {
	if len(sig) == 0 || len(sig)%c.planeChars != 0 {
		return 0, fmt.Errorf("isaxt: signature length %d is not a multiple of plane width %d", len(sig), c.planeChars)
	}
	bits := len(sig) / c.planeChars
	if bits > ts.MaxCardinalityBits {
		return 0, fmt.Errorf("isaxt: signature encodes %d bits, beyond max %d", bits, ts.MaxCardinalityBits)
	}
	return bits, nil
}

// DropTo truncates a signature from its current cardinality down to 2^lcBits
// — the paper's Eq. 2: n dropped characters = (hc_bits − lc_bits) · w/4.
// This single string slice is the operation that replaces the baseline's
// per-character cardinality conversions.
//
//tardis:hotpath
func (c *Codec) DropTo(sig Signature, lcBits int) (Signature, error) {
	hcBits, err := c.Bits(sig)
	if err != nil {
		return "", err
	}
	if lcBits < 1 || lcBits > hcBits {
		return "", fmt.Errorf("isaxt: cannot convert %d-bit signature to %d bits", hcBits, lcBits)
	}
	return sig[:lcBits*c.planeChars], nil
}

// Prefix returns the first `bits` planes of the signature without
// validation; it panics if the signature is too short. This is the hot-path
// variant of DropTo used during tree descent.
//
//tardis:hotpath
func (c *Codec) Prefix(sig Signature, bits int) Signature {
	return sig[:bits*c.planeChars]
}

// Plane returns the (1-based) p-th bit-plane substring of the signature —
// the key under which a sigTree node at layer p-1 stores the child covering
// this signature.
//
//tardis:hotpath
func (c *Codec) Plane(sig Signature, p int) Signature {
	return sig[(p-1)*c.planeChars : p*c.planeChars]
}

// Covers reports whether a (coarser) signature covers another: same word
// length and prefix match.
//
//tardis:hotpath
func Covers(node, sig Signature) bool {
	return len(node) <= len(sig) && string(sig[:len(node)]) == string(node)
}

// FromPAA converts a PAA vector to its iSAX-T signature at cardinality
// 2^bits.
func (c *Codec) FromPAA(paa ts.Series, bits int) (Signature, error) {
	if len(paa) != c.w {
		return "", fmt.Errorf("isaxt: PAA length %d != word length %d", len(paa), c.w)
	}
	return c.Encode(ts.SAXWord(paa, bits), bits)
}

// FromSeries converts a raw series to its iSAX-T signature: PAA at the
// codec's word length, SAX at cardinality 2^bits, then transposition. The
// caller is responsible for z-normalizing first if required.
func (c *Codec) FromSeries(s ts.Series, bits int) (Signature, error) {
	paa, err := ts.PAA(s, c.w)
	if err != nil {
		return "", err
	}
	return c.FromPAA(paa, bits)
}

// MinDistPAA lower-bounds the Euclidean distance between the original series
// (length n) behind the query PAA and any series covered by the signature,
// at the signature's own (word-level) cardinality. This is the pruning bound
// used by the kNN query strategies.
func (c *Codec) MinDistPAA(paa ts.Series, sig Signature, n int) (float64, error) {
	if len(paa) != c.w {
		return 0, fmt.Errorf("isaxt: PAA length %d != word length %d", len(paa), c.w)
	}
	wp := c.getWord()
	defer c.putWord(wp)
	bits, err := c.decodeInto(sig, *wp)
	if err != nil {
		return 0, err
	}
	return ts.MinDistPAAToWord(paa, *wp, bits, n), nil
}

// MinDistSignatures lower-bounds the Euclidean distance between two series
// of length n given only their signatures. If the signatures have different
// cardinalities, the finer one is truncated (word-level demotion) first.
func (c *Codec) MinDistSignatures(a, b Signature, n int) (float64, error) {
	if len(a) > len(b) {
		a = a[:len(b)]
	} else if len(b) > len(a) {
		b = b[:len(a)]
	}
	wa, bits, err := c.Decode(a)
	if err != nil {
		return 0, err
	}
	wb, _, err := c.Decode(b)
	if err != nil {
		return 0, err
	}
	return ts.MinDistWords(wa, wb, bits, n), nil
}

// Valid reports whether sig is a structurally valid signature for this
// codec: non-empty, whole planes, hex characters only.
func (c *Codec) Valid(sig Signature) bool {
	if _, err := c.Bits(sig); err != nil {
		return false
	}
	for i := 0; i < len(sig); i++ {
		if _, ok := hexValue(sig[i]); !ok {
			return false
		}
	}
	return true
}

func hexValue(b byte) (int, bool) {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0'), true
	case b >= 'A' && b <= 'F':
		return int(b-'A') + 10, true
	case b >= 'a' && b <= 'f':
		return int(b-'a') + 10, true
	}
	return 0, false
}

// FormatTable renders a signature as the per-cardinality table of the
// paper's Fig. 4(b), mainly for debugging and examples.
func (c *Codec) FormatTable(sig Signature) string {
	bits, err := c.Bits(sig)
	if err != nil {
		return fmt.Sprintf("<invalid signature %q: %v>", sig, err)
	}
	var b strings.Builder
	for lv := 1; lv <= bits; lv++ {
		pre := c.Prefix(sig, lv)
		word, _, err := c.Decode(pre)
		if err != nil {
			return fmt.Sprintf("<invalid signature %q: %v>", sig, err)
		}
		fmt.Fprintf(&b, "SAX(T,%d,%d) = %v = %s\n", c.w, 1<<lv, word, pre)
	}
	return b.String()
}
