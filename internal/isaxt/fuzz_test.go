package isaxt

import "testing"

// FuzzDecode ensures arbitrary signature strings never panic the decoder,
// that accepted signatures round-trip through Encode exactly, and that
// DropTo obeys the paper's Eq. 2 at every lower cardinality.
func FuzzDecode(f *testing.F) {
	f.Add("CE25")
	f.Add("C")
	f.Add("")
	f.Add("ZZZZ")
	f.Add("abcdef012345")
	f.Add("0F0F0F")
	f.Add("FFFFFFFFFFFF")
	f.Add("00000000000000000000000000000000000000000000000000")
	f.Fuzz(func(t *testing.T, sig string) {
		c := MustNewCodec(4)
		word, bits, err := c.Decode(Signature(sig))
		if err != nil {
			return
		}
		re, err := c.Encode(word, bits)
		if err != nil {
			t.Fatalf("accepted signature %q failed to re-encode: %v", sig, err)
		}
		// Round trip is exact up to hex case.
		if len(re) != len(sig) {
			t.Fatalf("round trip changed length: %q -> %q", sig, re)
		}
		w2, b2, err := c.Decode(re)
		if err != nil || b2 != bits {
			t.Fatalf("re-decode failed: %v", err)
		}
		for i := range word {
			if w2[i] != word[i] {
				t.Fatalf("round trip changed word: %v vs %v", word, w2)
			}
		}
		// Eq. 2 on the re-encoded signature: every cardinality reduction is a
		// word-aligned truncation that still covers the original.
		for lb := 1; lb <= bits; lb++ {
			low, err := c.DropTo(re, lb)
			if err != nil {
				t.Fatalf("DropTo(%q, %d): %v", re, lb, err)
			}
			if len(re)-len(low) != (bits-lb)*c.PlaneChars() {
				t.Fatalf("DropTo(%q, %d) dropped %d chars, Eq. 2 wants %d",
					re, lb, len(re)-len(low), (bits-lb)*c.PlaneChars())
			}
			if !Covers(low, re) {
				t.Fatalf("DropTo(%q, %d) = %q does not cover its source", re, lb, low)
			}
		}
	})
}
