package isaxt

import "testing"

// FuzzDecode ensures arbitrary signature strings never panic the decoder,
// and that accepted signatures round-trip through Encode exactly.
func FuzzDecode(f *testing.F) {
	f.Add("CE25")
	f.Add("C")
	f.Add("")
	f.Add("ZZZZ")
	f.Add("abcdef012345")
	f.Fuzz(func(t *testing.T, sig string) {
		c := MustNewCodec(4)
		word, bits, err := c.Decode(Signature(sig))
		if err != nil {
			return
		}
		re, err := c.Encode(word, bits)
		if err != nil {
			t.Fatalf("accepted signature %q failed to re-encode: %v", sig, err)
		}
		// Round trip is exact up to hex case.
		if len(re) != len(sig) {
			t.Fatalf("round trip changed length: %q -> %q", sig, re)
		}
		w2, b2, err := c.Decode(re)
		if err != nil || b2 != bits {
			t.Fatalf("re-decode failed: %v", err)
		}
		for i := range word {
			if w2[i] != word[i] {
				t.Fatalf("round trip changed word: %v vs %v", word, w2)
			}
		}
	})
}
