package isaxt

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/tardisdb/tardis/internal/ts"
)

// The worked example from the paper's Fig. 4(a): SAX(T,4,16) =
// [1100, 1101, 0110, 0001] transposes to "CE25".
func TestEncodePaperExample(t *testing.T) {
	c := MustNewCodec(4)
	word := []int{0b1100, 0b1101, 0b0110, 0b0001}
	sig, err := c.Encode(word, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sig != "CE25" {
		t.Errorf("signature = %q, want CE25", sig)
	}
	// Fig. 4(b): the prefixes are the lower-cardinality signatures.
	for _, tc := range []struct {
		bits int
		want Signature
	}{{1, "C"}, {2, "CE"}, {3, "CE2"}, {4, "CE25"}} {
		got, err := c.DropTo(sig, tc.bits)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("DropTo(%d) = %q, want %q", tc.bits, got, tc.want)
		}
	}
}

func TestDropToMatchesEquation2(t *testing.T) {
	// Eq. 2: dropped chars n = (log2 hc - log2 lc) * w/4.
	c := MustNewCodec(8)
	rng := rand.New(rand.NewSource(1))
	paa := make(ts.Series, 8)
	for i := range paa {
		paa[i] = rng.NormFloat64()
	}
	sig, err := c.FromPAA(paa, 6) // cardinality 64
	if err != nil {
		t.Fatal(err)
	}
	for lc := 1; lc <= 6; lc++ {
		got, err := c.DropTo(sig, lc)
		if err != nil {
			t.Fatal(err)
		}
		dropped := len(sig) - len(got)
		want := (6 - lc) * 8 / 4
		if dropped != want {
			t.Errorf("lc=%d: dropped %d chars, want %d", lc, dropped, want)
		}
	}
}

func TestNewCodecValidation(t *testing.T) {
	for _, w := range []int{0, -4, 3, 6, 10} {
		if _, err := NewCodec(w); err == nil {
			t.Errorf("NewCodec(%d) should fail", w)
		}
	}
	for _, w := range []int{4, 8, 12, 16, 64, 128} {
		if _, err := NewCodec(w); err != nil {
			t.Errorf("NewCodec(%d) failed: %v", w, err)
		}
	}
}

func TestMustNewCodecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustNewCodec(5)
}

func TestEncodeValidation(t *testing.T) {
	c := MustNewCodec(4)
	if _, err := c.Encode([]int{1, 1, 1}, 2); err == nil {
		t.Error("wrong word length should fail")
	}
	if _, err := c.Encode([]int{1, 1, 1, 1}, 0); err == nil {
		t.Error("bits=0 should fail")
	}
	if _, err := c.Encode([]int{4, 0, 0, 0}, 2); err == nil {
		t.Error("out-of-range symbol should fail")
	}
	if _, err := c.Encode([]int{-1, 0, 0, 0}, 2); err == nil {
		t.Error("negative symbol should fail")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	c := MustNewCodec(8)
	word := []int{5, 0, 7, 3, 2, 6, 1, 4}
	sig, err := c.Encode(word, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, bits, err := c.Decode(sig)
	if err != nil {
		t.Fatal(err)
	}
	if bits != 3 {
		t.Errorf("bits = %d, want 3", bits)
	}
	for i := range word {
		if got[i] != word[i] {
			t.Errorf("decoded[%d] = %d, want %d", i, got[i], word[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	c := MustNewCodec(8)
	if _, _, err := c.Decode("ABC"); err == nil {
		t.Error("partial plane should fail")
	}
	if _, _, err := c.Decode(""); err == nil {
		t.Error("empty signature should fail")
	}
	if _, _, err := c.Decode("ZZ"); err == nil {
		t.Error("non-hex should fail")
	}
	long := Signature(strings.Repeat("AB", ts.MaxCardinalityBits+1))
	if _, _, err := c.Decode(long); err == nil {
		t.Error("over-max-bits signature should fail")
	}
}

func TestDropToErrors(t *testing.T) {
	c := MustNewCodec(4)
	sig := Signature("CE25")
	if _, err := c.DropTo(sig, 0); err == nil {
		t.Error("lc=0 should fail")
	}
	if _, err := c.DropTo(sig, 5); err == nil {
		t.Error("promoting should fail")
	}
	c8 := MustNewCodec(8)
	if _, err := c8.DropTo("ABC", 1); err == nil {
		t.Error("partial-plane length should fail")
	}
}

func TestPlane(t *testing.T) {
	c := MustNewCodec(8)
	sig := Signature("AB12CD")
	if p := c.Plane(sig, 1); p != "AB" {
		t.Errorf("plane 1 = %q", p)
	}
	if p := c.Plane(sig, 3); p != "CD" {
		t.Errorf("plane 3 = %q", p)
	}
}

func TestCovers(t *testing.T) {
	if !Covers("CE", "CE25") {
		t.Error("prefix should cover")
	}
	if Covers("CF", "CE25") {
		t.Error("non-prefix should not cover")
	}
	if Covers("CE25A", "CE25") {
		t.Error("longer should not cover shorter")
	}
	if !Covers("CE25", "CE25") {
		t.Error("equal should cover")
	}
}

func TestValid(t *testing.T) {
	c := MustNewCodec(8)
	if !c.Valid("AB12") {
		t.Error("AB12 should be valid for w=8")
	}
	if c.Valid("ABC") || c.Valid("") || c.Valid("G0") {
		t.Error("invalid signatures accepted")
	}
	if !c.Valid("ab") {
		t.Error("lowercase hex should be accepted on input")
	}
}

func TestFromSeries(t *testing.T) {
	c := MustNewCodec(8)
	s := make(ts.Series, 64)
	for i := range s {
		s[i] = math.Sin(float64(i) / 5)
	}
	sig, err := c.FromSeries(s.ZNormalize(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 6*2 {
		t.Errorf("signature length = %d, want 12", len(sig))
	}
	if _, err := c.FromSeries(ts.Series{1, 2}, 6); err == nil {
		t.Error("short series should fail")
	}
	if _, err := c.FromPAA(ts.Series{1, 2}, 6); err == nil {
		t.Error("wrong PAA length should fail")
	}
}

// The signature-prefix property is the heart of iSAX-T: encoding at a lower
// cardinality equals truncating the higher-cardinality signature.
func TestPrefixProperty(t *testing.T) {
	c := MustNewCodec(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		paa := make(ts.Series, 8)
		for i := range paa {
			paa[i] = rng.NormFloat64()
		}
		hi, err := c.FromPAA(paa, 8)
		if err != nil {
			return false
		}
		for bits := 1; bits < 8; bits++ {
			lo, err := c.FromPAA(paa, bits)
			if err != nil {
				return false
			}
			if c.Prefix(hi, bits) != lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Encode/Decode round-trips for random words at all cardinalities and a few
// word lengths.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, w := range []int{4, 8, 16} {
			c := MustNewCodec(w)
			bits := 1 + rng.Intn(8)
			word := make([]int, w)
			for i := range word {
				word[i] = rng.Intn(1 << bits)
			}
			sig, err := c.Encode(word, bits)
			if err != nil {
				return false
			}
			got, gb, err := c.Decode(sig)
			if err != nil || gb != bits {
				return false
			}
			for i := range word {
				if got[i] != word[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// MinDist via signatures is a lower bound on true distance, and word-level
// demotion only loosens it.
func TestMinDistLowerBoundProperty(t *testing.T) {
	const n, w = 64, 8
	c := MustNewCodec(w)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := make(ts.Series, n), make(ts.Series, n)
		for i := 0; i < n; i++ {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		ed, _ := ts.EuclideanDistance(a, b)
		pa := ts.MustPAA(a, w)
		sb, err := c.FromSeries(b, 8)
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for bits := 8; bits >= 1; bits-- {
			sig := c.Prefix(sb, bits)
			d, err := c.MinDistPAA(pa, sig, n)
			if err != nil {
				return false
			}
			if d > ed+1e-9 {
				return false // not a lower bound
			}
			if d > prev+1e-9 {
				return false // demotion tightened the bound: impossible
			}
			prev = d
		}
		// Signature-to-signature bound is weaker still.
		sa, _ := c.FromSeries(a, 8)
		ds, err := c.MinDistSignatures(sa, sb, n)
		if err != nil {
			return false
		}
		return ds <= ed+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinDistSignaturesMixedLevels(t *testing.T) {
	c := MustNewCodec(8)
	rng := rand.New(rand.NewSource(7))
	a, b := make(ts.Series, 64), make(ts.Series, 64)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	sa, _ := c.FromSeries(a, 6)
	sb, _ := c.FromSeries(b, 3)
	d1, err := c.MinDistSignatures(sa, sb, 64)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.MinDistSignatures(sb, sa, 64)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("mixed-level mindist not symmetric: %v vs %v", d1, d2)
	}
}

func TestFormatTable(t *testing.T) {
	c := MustNewCodec(4)
	out := c.FormatTable("CE25")
	if !strings.Contains(out, "= CE25") || !strings.Contains(out, "= C\n") {
		t.Errorf("unexpected table output:\n%s", out)
	}
	if !strings.Contains(c.FormatTable("XYZ"), "invalid") {
		t.Error("invalid signature should render as invalid")
	}
}

// DropTo obeys the paper's Eq. 2 for random words, word lengths, and
// cardinality pairs: the truncation drops exactly (hc_bits − lc_bits)·w/4
// characters, lands on the same signature as encoding the demoted word
// directly, composes through any intermediate cardinality, and yields a
// prefix that Covers the original.
func TestDropToEquation2Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, w := range []int{4, 8, 12, 16} {
			c := MustNewCodec(w)
			hc := 1 + rng.Intn(ts.MaxCardinalityBits)
			lc := 1 + rng.Intn(hc)
			mid := lc + rng.Intn(hc-lc+1)
			word := make([]int, w)
			for i := range word {
				word[i] = rng.Intn(1 << hc)
			}
			sig, err := c.Encode(word, hc)
			if err != nil {
				return false
			}
			low, err := c.DropTo(sig, lc)
			if err != nil {
				return false
			}
			// Eq. 2: n = (log2 hc − log2 lc) · w/4.
			if len(sig)-len(low) != (hc-lc)*w/4 {
				return false
			}
			// Demoting the word itself (dropping its hc−lc low bits) and
			// encoding at lc must agree with the string truncation.
			demoted := make([]int, w)
			for i, s := range word {
				demoted[i] = s >> uint(hc-lc)
			}
			direct, err := c.Encode(demoted, lc)
			if err != nil || direct != low {
				return false
			}
			// Composition through any intermediate cardinality is lossless.
			via, err := c.DropTo(sig, mid)
			if err != nil {
				return false
			}
			via, err = c.DropTo(via, lc)
			if err != nil || via != low {
				return false
			}
			if !Covers(low, sig) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
