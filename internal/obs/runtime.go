package obs

import (
	"runtime"
	"sync"
	"time"
)

// Process-pressure metrics, registered once per process by every daemon's
// debug surface (DebugHandler / -debug-addr) so query profiles and traces
// can be correlated with GC and goroutine load at the time they ran.
//
// runtime.ReadMemStats stops the world briefly, so reads are cached: at
// most one refresh per second regardless of scrape rate, shared by both
// gauges and the GC-pause histogram feed.

var gcPauseBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 1e-1,
}

var runtimeState struct {
	once    sync.Once
	mu      sync.Mutex
	last    time.Time        // guarded by mu
	mem     runtime.MemStats // guarded by mu
	numGC   uint32           // GC cycles already fed to the histogram; guarded by mu
	gcPause *Histogram
}

// refreshRuntimeStats re-reads MemStats if the cache is stale, feeds any
// new GC pauses into the pause histogram, and returns the heap-alloc bytes
// from the cached stats (copied out under the lock).
func refreshRuntimeStats() float64 {
	s := &runtimeState
	s.mu.Lock()
	if time.Since(s.last) >= time.Second {
		runtime.ReadMemStats(&s.mem)
		s.last = time.Now()
		// PauseNs is a circular buffer of the last 256 pauses; feed only
		// the cycles that completed since the previous refresh.
		newGC := s.mem.NumGC
		from := s.numGC
		if newGC > from+256 {
			from = newGC - 256
		}
		for i := from; i < newGC; i++ {
			s.gcPause.Observe(float64(s.mem.PauseNs[i%256]) / 1e9)
		}
		s.numGC = newGC
	}
	heap := float64(s.mem.HeapAlloc)
	s.mu.Unlock()
	return heap
}

// RegisterRuntimeMetrics registers the process runtime gauges and GC pause
// histogram on the default registry. Idempotent; called by DebugHandler so
// every daemon with a -debug-addr (and tardis-serve's API mux) exposes them.
func RegisterRuntimeMetrics() {
	runtimeState.once.Do(func() {
		runtimeState.gcPause = NewHistogram("tardis_runtime_gc_pause_seconds",
			"Stop-the-world GC pause durations.", gcPauseBuckets)
		NewGaugeFunc("tardis_runtime_goroutines_count",
			"Live goroutines in the process.",
			func() float64 { return float64(runtime.NumGoroutine()) })
		NewGaugeFunc("tardis_runtime_heap_alloc_bytes",
			"Bytes of allocated heap objects (cached up to 1s).",
			refreshRuntimeStats)
	})
}
