package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: its metadata plus samples in file
// order. Histogram families collect their _bucket/_sum/_count series.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Exposition is a parsed /metrics payload.
type Exposition struct {
	Families map[string]*Family
	Order    []string
}

// ParseExposition parses Prometheus text format (version 0.0.4) and
// validates the invariants the golden test and the obs-smoke CI gate rely
// on: every sample is preceded by HELP/TYPE for its family, families appear
// at most once, values parse as floats, histogram bucket counts are
// cumulative and non-decreasing with a +Inf bucket equal to _count.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Families: map[string]*Family{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var cur *Family
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP with no metric name", lineNo)
			}
			if _, dup := exp.Families[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate family %s", lineNo, name)
			}
			cur = &Family{Name: name, Help: unescapeHelp(help)}
			exp.Families[name] = cur
			exp.Order = append(exp.Order, name)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: TYPE with no type", lineNo)
			}
			if cur == nil || cur.Name != name {
				return nil, fmt.Errorf("line %d: TYPE %s not preceded by its HELP line", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			cur.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base, fam := resolveFamily(exp, s.Name)
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s before its HELP/TYPE", lineNo, s.Name)
		}
		if fam.Type == "histogram" {
			switch {
			case s.Name == base+"_bucket", s.Name == base+"_sum", s.Name == base+"_count":
			default:
				return nil, fmt.Errorf("line %d: histogram %s has unexpected series %s", lineNo, base, s.Name)
			}
		} else if s.Name != base {
			return nil, fmt.Errorf("line %d: sample %s does not match family %s", lineNo, s.Name, base)
		}
		fam.Samples = append(fam.Samples, s)
		cur = fam
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range exp.Order {
		if f := exp.Families[name]; f.Type == "histogram" {
			if err := f.checkHistogram(); err != nil {
				return nil, err
			}
		}
	}
	return exp, nil
}

// resolveFamily maps a sample name to its declared family. An exact match
// wins (a gauge may legitimately end in _count); otherwise histogram series
// suffixes are stripped to find the declaring histogram family.
func resolveFamily(exp *Exposition, sample string) (string, *Family) {
	if f, ok := exp.Families[sample]; ok {
		return sample, f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base == sample {
			continue
		}
		if f, ok := exp.Families[base]; ok && f.Type == "histogram" {
			return base, f
		}
	}
	return sample, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	if !nameRe(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	if valStr == "" {
		return s, fmt.Errorf("missing value in %q", line)
	}
	// A trailing timestamp is legal; take the first field as the value.
	if sp := strings.IndexByte(valStr, ' '); sp >= 0 {
		valStr = valStr[:sp]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valStr, err)
	}
	s.Value = v
	return s, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// unescapeHelp reverses the text-format 0.0.4 HELP escaping (escapeHelp on
// the write side): `\\` → `\` and `\n` → newline. Unknown escapes are kept
// literally — HELP is free text, so the parser is lenient where label
// values are strict.
func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(c)
	}
	return b.String()
}

func parseLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed labels %q", s)
		}
		name := s[:eq]
		if !nameRe(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s: unquoted value", name)
		}
		s = s[1:]
		var b strings.Builder
		for {
			if len(s) == 0 {
				return fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if len(s) == 0 {
					return fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[0] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return fmt.Errorf("label %s: bad escape \\%c", name, s[0])
				}
				s = s[1:]
				continue
			}
			b.WriteByte(c)
		}
		if _, dup := out[name]; dup {
			return fmt.Errorf("duplicate label %s", name)
		}
		out[name] = b.String()
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

// checkHistogram validates _bucket/_sum/_count invariants for every label
// combination of a histogram family.
func (f *Family) checkHistogram() error {
	type series struct {
		buckets map[float64]float64
		sum     *float64
		count   *float64
	}
	bySig := map[string]*series{}
	sig := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k == "le" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(labels[k])
			b.WriteByte(';')
		}
		return b.String()
	}
	get := func(labels map[string]string) *series {
		k := sig(labels)
		s, ok := bySig[k]
		if !ok {
			s = &series{buckets: map[float64]float64{}}
			bySig[k] = s
		}
		return s
	}
	for i := range f.Samples {
		smp := &f.Samples[i]
		s := get(smp.Labels)
		switch smp.Name {
		case f.Name + "_bucket":
			leStr, ok := smp.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", f.Name)
			}
			le, err := parseValue(leStr)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", f.Name, leStr)
			}
			s.buckets[le] = smp.Value
		case f.Name + "_sum":
			v := smp.Value
			s.sum = &v
		case f.Name + "_count":
			v := smp.Value
			s.count = &v
		}
	}
	for _, s := range bySig {
		if len(s.buckets) == 0 || s.sum == nil || s.count == nil {
			return fmt.Errorf("histogram %s: incomplete _bucket/_sum/_count series", f.Name)
		}
		inf, ok := s.buckets[math.Inf(1)]
		if !ok {
			return fmt.Errorf("histogram %s: missing +Inf bucket", f.Name)
		}
		if inf != *s.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", f.Name, inf, *s.count)
		}
		bounds := make([]float64, 0, len(s.buckets))
		for le := range s.buckets {
			bounds = append(bounds, le)
		}
		sort.Float64s(bounds)
		prev := math.Inf(-1)
		prevCount := 0.0
		for _, le := range bounds {
			if le == prev {
				return fmt.Errorf("histogram %s: duplicate bucket bound %v", f.Name, le)
			}
			if s.buckets[le] < prevCount {
				return fmt.Errorf("histogram %s: bucket counts not cumulative at le=%v", f.Name, le)
			}
			prev, prevCount = le, s.buckets[le]
		}
	}
	return nil
}
