package obs

import (
	"context"
	"flag"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
)

// logLevel is the process-wide minimum level; swapping it retunes every
// logger returned by Logger, past and future.
var logLevel = func() *slog.LevelVar {
	v := &slog.LevelVar{}
	v.Set(slog.LevelInfo)
	return v
}()

// logSink holds the active slog.Handler behind an atomic pointer so
// SetLogOutput can redirect existing loggers (tests, -log json, etc.).
var logSink atomic.Pointer[slog.Handler]

func init() {
	h := slog.Handler(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))
	logSink.Store(&h)
}

// SetLogOutput replaces the destination for all obs loggers. Format is
// "text" or "json"; anything else defaults to text.
func SetLogOutput(w io.Writer, format string) {
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(w, &slog.HandlerOptions{Level: logLevel})
	} else {
		h = slog.NewTextHandler(w, &slog.HandlerOptions{Level: logLevel})
	}
	logSink.Store(&h)
}

// SetLogLevel sets the process-wide minimum level ("debug", "info", "warn",
// "error"; unknown strings keep info).
func SetLogLevel(level string) {
	switch level {
	case "debug":
		logLevel.Set(slog.LevelDebug)
	case "warn":
		logLevel.Set(slog.LevelWarn)
	case "error":
		logLevel.Set(slog.LevelError)
	default:
		logLevel.Set(slog.LevelInfo)
	}
}

// dynHandler forwards to the current logSink so handler swaps reach loggers
// created earlier. Per-logger attrs/groups are layered outside the swap.
type dynHandler struct {
	attrs  []slog.Attr
	groups []string
}

func (d dynHandler) resolve() slog.Handler {
	h := *logSink.Load()
	for _, g := range d.groups {
		h = h.WithGroup(g)
	}
	if len(d.attrs) > 0 {
		h = h.WithAttrs(d.attrs)
	}
	return h
}

func (d dynHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return d.resolve().Enabled(ctx, level)
}

func (d dynHandler) Handle(ctx context.Context, r slog.Record) error {
	return d.resolve().Handle(ctx, r)
}

func (d dynHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nd := dynHandler{attrs: append(append([]slog.Attr{}, d.attrs...), attrs...), groups: d.groups}
	return nd
}

func (d dynHandler) WithGroup(name string) slog.Handler {
	nd := dynHandler{attrs: d.attrs, groups: append(append([]string{}, d.groups...), name)}
	return nd
}

// Logger returns a structured logger tagged with its component (e.g. "core",
// "rpc", "server"). Components are the stable per-subsystem log streams
// documented in DESIGN.md; grep `component=rpc` to follow one layer.
func Logger(component string) *slog.Logger {
	return slog.New(dynHandler{attrs: []slog.Attr{slog.String("component", component)}})
}

// Fatal logs at error level and exits. It replaces log.Fatal call sites in
// the cmds so even startup failures are structured.
func Fatal(l *slog.Logger, msg string, args ...any) {
	l.Error(msg, args...)
	osExit(1)
}

// osExit is swappable for tests.
var osExit = os.Exit

// LogFlags registers -log-level and -log-format on fs and returns an apply
// function for the cmds to call after flag.Parse.
func LogFlags(fs *flag.FlagSet) (apply func()) {
	level := fs.String("log-level", "info", "log level: debug | info | warn | error")
	format := fs.String("log-format", "text", "log format: text | json")
	return func() {
		SetLogLevel(*level)
		SetLogOutput(os.Stderr, *format)
	}
}
