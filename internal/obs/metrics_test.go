package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTestRegistry populates a registry with one instrument of every shape,
// with fixed observations, so the exposition output is fully deterministic.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.NewCounter("tardis_test_plain_total", "An unlabeled counter.")
	c.Add(3)
	cv := r.NewCounterVec("tardis_test_labeled_total", "A labeled counter.", "strategy", "outcome")
	cv.With("tna", "ok").Add(5)
	cv.With("opa", "error").Inc()
	cv.With("mpa", "ok").Add(2)
	g := r.NewGauge("tardis_test_resident_bytes", "An unlabeled gauge.")
	g.Set(4096)
	gv := r.NewGaugeVec("tardis_test_workers_count", "A labeled gauge.", "state")
	gv.With("alive").Set(3)
	gv.With("tripped").Set(1)
	h := r.NewHistogram("tardis_test_latency_seconds", "A histogram with custom buckets.",
		[]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 2, 3} {
		h.Observe(v)
	}
	hv := r.NewHistogramVec("tardis_test_stage_seconds", "A labeled histogram.",
		[]float64{0.5, 1.5}, "stage")
	hv.With("shuffle").Observe(1)
	hv.With("shuffle").Observe(2)
	hv.With("spill").Observe(0.25)
	r.NewCounter("tardis_test_empty_total", "A family with no samples yet — HELP/TYPE must still appear.")
	// The empty-family behaviour matters for vecs too: register, never With.
	r.NewCounterVec("tardis_test_unused_total", "A labeled family never observed.", "kind")
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// The golden output must round-trip through our own validator.
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("golden output does not parse: %v", err)
	}
	for _, name := range []string{
		"tardis_test_plain_total", "tardis_test_labeled_total", "tardis_test_resident_bytes",
		"tardis_test_workers_count", "tardis_test_latency_seconds", "tardis_test_stage_seconds",
		"tardis_test_empty_total", "tardis_test_unused_total",
	} {
		if _, ok := exp.Families[name]; !ok {
			t.Errorf("family %s missing from parsed exposition", name)
		}
	}
}

func TestExpositionSortedAndTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(exp.Order); i++ {
		if exp.Order[i-1] >= exp.Order[i] {
			t.Errorf("families not sorted: %s before %s", exp.Order[i-1], exp.Order[i])
		}
	}
	for name, f := range exp.Families {
		if f.Type == "" {
			t.Errorf("family %s has no TYPE line", name)
		}
	}
	hist := exp.Families["tardis_test_latency_seconds"]
	var bucketLines, sumLines, countLines int
	for _, s := range hist.Samples {
		switch s.Name {
		case "tardis_test_latency_seconds_bucket":
			bucketLines++
		case "tardis_test_latency_seconds_sum":
			sumLines++
		case "tardis_test_latency_seconds_count":
			countLines++
		}
	}
	if bucketLines != 4 || sumLines != 1 || countLines != 1 {
		t.Errorf("histogram series counts: buckets=%d sum=%d count=%d, want 4/1/1",
			bucketLines, sumLines, countLines)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// Exactly-on-boundary observations land in the bucket whose le equals
	// the value (le is <=, not <).
	h.Observe(1)
	h.Observe(2)
	h.Observe(4)
	h.Observe(0.5)
	h.Observe(8) // overflow
	counts := h.snapshot()
	want := []int64{2, 1, 1, 1} // le=1 gets {0.5, 1}, le=2 gets {2}, le=4 gets {4}, +Inf gets {8}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-15.5) > 1e-9 {
		t.Errorf("sum = %v, want 15.5", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("quantile of empty histogram should be NaN")
	}
	// 100 observations uniform over (0, 30]: ~33 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.3)
	}
	for _, tc := range []struct{ q, lo, hi float64 }{
		{0.5, 14, 16},  // true median 15
		{0.9, 26, 28},  // true p90 27
		{0.25, 6, 9},   // true p25 7.5
		{1.0, 29, 30},  // max clamps to highest bound
		{0.0, 0, 0.31}, // min interpolates from zero
	} {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("Quantile(%v) = %v, want in [%v, %v]", tc.q, got, tc.lo, tc.hi)
		}
	}
	// Ranks past the last finite bound report that bound.
	h2 := newHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want 1 (highest finite bound)", got)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before HELP":  "tardis_x_y_total 1\n",
		"duplicate family":    "# HELP a_b_c x\n# TYPE a_b_c counter\n# HELP a_b_c x\n# TYPE a_b_c counter\n",
		"bad value":           "# HELP a_b_c x\n# TYPE a_b_c counter\na_b_c banana\n",
		"unterminated labels": "# HELP a_b_c x\n# TYPE a_b_c counter\na_b_c{l=\"v\" 1\n",
		"unknown type":        "# HELP a_b_c x\n# TYPE a_b_c widget\na_b_c 1\n",
		"missing inf bucket": "# HELP h_x_seconds x\n# TYPE h_x_seconds histogram\n" +
			"h_x_seconds_bucket{le=\"1\"} 1\nh_x_seconds_sum 1\nh_x_seconds_count 1\n",
		"non-cumulative buckets": "# HELP h_x_seconds x\n# TYPE h_x_seconds histogram\n" +
			"h_x_seconds_bucket{le=\"1\"} 5\nh_x_seconds_bucket{le=\"2\"} 3\n" +
			"h_x_seconds_bucket{le=\"+Inf\"} 5\nh_x_seconds_sum 1\nh_x_seconds_count 5\n",
		"inf bucket != count": "# HELP h_x_seconds x\n# TYPE h_x_seconds histogram\n" +
			"h_x_seconds_bucket{le=\"+Inf\"} 4\nh_x_seconds_sum 1\nh_x_seconds_count 5\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error, got none", name)
		}
	}
}

func TestParseExpositionLabelEscapes(t *testing.T) {
	in := "# HELP a_b_c x\n# TYPE a_b_c counter\n" +
		"a_b_c{path=\"C:\\\\dir\\\\f\",msg=\"say \\\"hi\\\"\\nbye\"} 7\n"
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	s := exp.Families["a_b_c"].Samples[0]
	if s.Labels["path"] != `C:\dir\f` || s.Labels["msg"] != "say \"hi\"\nbye" {
		t.Errorf("unescaped labels wrong: %#v", s.Labels)
	}
	if s.Value != 7 {
		t.Errorf("value = %v, want 7", s.Value)
	}
}

func TestRegistryIdempotentAndMismatch(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("tardis_test_idem_total", "x")
	b := r.NewCounter("tardis_test_idem_total", "x")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on kind mismatch")
			}
		}()
		r.NewGauge("tardis_test_idem_total", "x")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on label mismatch")
			}
		}()
		r.NewCounterVec("tardis_test_idem_total", "x", "l")
	}()
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("tardis_test_conc_total", "x")
	h := r.NewHistogram("tardis_test_conc_seconds", "x", []float64{1})
	gv := r.NewGaugeVec("tardis_test_conc_bytes", "x", "shard")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			shard := []string{"a", "b"}[n%2]
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
				gv.With(shard).Add(1)
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || math.Abs(h.Sum()-4000) > 1e-6 {
		t.Errorf("histogram count=%d sum=%v, want 8000/4000", h.Count(), h.Sum())
	}
	if got := gv.With("a").Value() + gv.With("b").Value(); got != 8000 {
		t.Errorf("gauge total = %d, want 8000", got)
	}
}
