// Package obs is the unified telemetry layer: a concurrent metrics registry
// with Prometheus text exposition, lightweight trace spans that propagate
// across net/rpc boundaries, per-component structured loggers (log/slog), and
// the debug HTTP surface (/metrics, /debug/traces, /debug/pprof). It is
// stdlib-only, like the rest of the module.
//
// Metric naming follows tardis_<subsystem>_<name>_<unit>; the metricname
// tardislint pass enforces the convention (and rejects unbounded-cardinality
// label values) at every obs call site.
//
// All instruments are safe for concurrent use. Counters, gauges, and
// histograms update with atomics only; the registry mutex is touched at
// registration and exposition time, never on the hot path. Resolving a vec
// child with With allocates a lookup key — hot call sites should resolve
// their children once and reuse them.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind discriminates the registered instrument families.
type MetricKind string

// The exposition TYPE of each family.
const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down (bytes resident,
// entries, open breakers).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds a (possibly negative) delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations. Buckets are
// cumulative in exposition (Prometheus "le" semantics); counts[i] holds
// observations <= bounds[i], with one overflow bucket for +Inf.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefSecondsBuckets is the default latency bucket layout, spanning 100µs to
// 10s — the range between a cache-hit target-node probe and a cold
// distributed scan.
var DefSecondsBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefSecondsBuckets
	}
	bounds := make([]float64, len(buckets))
	copy(bounds, buckets)
	sort.Float64s(bounds)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic(fmt.Sprintf("obs: duplicate histogram bucket bound %v", bounds[i]))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound admits v; sort.SearchFloat64s returns
	// the first i with bounds[i] >= v, matching le (<=) semantics.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns per-bucket non-cumulative counts.
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket that crosses the target rank, mirroring Prometheus's
// histogram_quantile. It returns NaN with no observations; the lowest bucket
// interpolates from zero, and ranks landing in the +Inf bucket report the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	counts := h.snapshot()
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if c == 0 {
				return h.bounds[i]
			}
			inBucket := rank - float64(cum-c)
			return lower + (h.bounds[i]-lower)*(inBucket/float64(c))
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// family is one registered metric family: metadata plus its children keyed by
// label values ("" for the unlabeled singleton).
type family struct {
	name   string
	help   string
	kind   MetricKind
	labels []string

	buckets []float64 // histograms only

	mu       sync.Mutex
	children map[string]any      // guarded by mu; *Counter | *Gauge | *Histogram
	order    []string            // guarded by mu; insertion order of keys (sorted at exposition)
	gaugeFn  func() float64      // callback gauges; nil otherwise
	keyVals  map[string][]string // guarded by mu; key -> label values
}

const labelSep = "\x1f"

func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.kind {
	case KindCounter:
		c = &Counter{}
	case KindGauge:
		c = &Gauge{}
	case KindHistogram:
		c = newHistogram(f.buckets)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	vals := make([]string, len(values))
	copy(vals, values)
	f.keyVals[key] = vals
	return c
}

// Registry holds metric families and renders them in Prometheus text format.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry backs the package-level constructors; every process-wide
// metric family in the module lands here.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry served at /metrics.
func Default() *Registry { return defaultRegistry }

var nameRe = mustNameRe()

func mustNameRe() func(string) bool {
	// Prometheus metric and label names: [a-zA-Z_:][a-zA-Z0-9_:]*. The
	// project convention is stricter (checked by the metricname lint pass);
	// the registry only enforces wire validity.
	return func(s string) bool {
		if s == "" {
			return false
		}
		for i, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			case r >= '0' && r <= '9':
				if i == 0 {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
}

// register creates or returns the named family. Re-registering with the same
// shape is idempotent (families are package-level; tests share the process);
// a shape mismatch panics — it is always a programming error.
func (r *Registry) register(name, help string, kind MetricKind, buckets []float64, labels []string) *family {
	if !nameRe(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRe(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, labels: append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]any{}, keyVals: map[string][]string{},
	}
	r.families[name] = f
	return f
}

// NewCounter registers (or finds) an unlabeled counter on the registry.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return f.child(nil).(*Counter)
}

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, nil, labels)}
}

// NewGauge registers an unlabeled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return f.child(nil).(*Gauge)
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, nil, labels)}
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.mu.Lock()
	f.gaugeFn = fn
	f.mu.Unlock()
}

// NewHistogram registers an unlabeled histogram; nil buckets use
// DefSecondsBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, KindHistogram, buckets, nil)
	return f.child(nil).(*Histogram)
}

// NewHistogramVec registers a histogram family with the given label names.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, buckets, labels)}
}

// Package-level constructors on the default registry.

// NewCounter registers an unlabeled counter on the default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewCounterVec registers a labeled counter family on the default registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return defaultRegistry.NewCounterVec(name, help, labels...)
}

// NewGauge registers an unlabeled gauge on the default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewGaugeVec registers a labeled gauge family on the default registry.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return defaultRegistry.NewGaugeVec(name, help, labels...)
}

// NewGaugeFunc registers a scrape-time gauge on the default registry.
func NewGaugeFunc(name, help string, fn func() float64) {
	defaultRegistry.NewGaugeFunc(name, help, fn)
}

// NewHistogram registers an unlabeled histogram on the default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, buckets)
}

// NewHistogramVec registers a labeled histogram family on the default
// registry.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return defaultRegistry.NewHistogramVec(name, help, buckets, labels...)
}

// CounterVec is a counter family addressed by label values.
type CounterVec struct{ f *family }

// With returns the counter child for the given label values, creating it on
// first use. Label values must come from a bounded set (enforced statically
// by the metricname lint pass).
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family addressed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge child for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family addressed by label values.
type HistogramVec struct{ f *family }

// With returns the histogram child for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// ---- exposition ----

func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for the given names/values, with extra
// appended pairs (used for the histogram le label).
func labelString(names, values []string, extraName, extraVal string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(names[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with its HELP and
// TYPE line followed by its samples sorted by label values. A registered
// family with no children still emits HELP/TYPE, so scrapers (and the
// obs-smoke gate) can assert that every expected family exists before
// traffic arrives.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make(map[string]*family, len(names))
	for _, n := range names {
		fams[n] = r.families[n]
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		if err := fams[name].write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	gaugeFn := f.gaugeFn
	children := make([]any, len(keys))
	values := make([][]string, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
		values[i] = f.keyVals[k]
	}
	f.mu.Unlock()

	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	if gaugeFn != nil {
		_, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(gaugeFn()))
		return err
	}
	for i, c := range children {
		ls := labelString(f.labels, values[i], "", "")
		switch m := c.(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, m.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, m.Value()); err != nil {
				return err
			}
		case *Histogram:
			counts := m.snapshot()
			var cum int64
			for bi, bound := range m.bounds {
				cum += counts[bi]
				bl := labelString(f.labels, values[i], "le", formatFloat(bound))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bl, cum); err != nil {
					return err
				}
			}
			cum += counts[len(m.bounds)]
			bl := labelString(f.labels, values[i], "le", "+Inf")
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bl, cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatFloat(m.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, m.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}
