package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the default registry in Prometheus text format.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default().WritePrometheus(w)
	})
}

// TracesHandler serves the retained trace trees as JSON.
func TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteTracesJSON(w)
	})
}

// DebugHandler returns the full debug surface: /metrics, /debug/traces, and
// the net/http/pprof endpoints. Mounted behind -debug-addr on every daemon
// cmd; never exposed on the public service listener except /metrics and
// /debug/traces, which tardis-serve also mounts on its API mux.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/debug/traces", TracesHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer binds addr and serves DebugHandler on it in a background
// goroutine, returning the bound address (useful with ":0"). An empty addr
// is a no-op returning "".
func StartDebugServer(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugHandler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
