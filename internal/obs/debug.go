package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// debugExtras holds handlers registered by other packages (e.g. qprof's
// /debug/queries) so DebugHandler can mount them without obs importing the
// packages that provide them.
var (
	debugExtrasMu sync.Mutex
	debugExtras   map[string]http.Handler // guarded by debugExtrasMu
)

// RegisterDebugHandler mounts h at pattern on every DebugHandler built
// after the call. Typically invoked from package init; later registrations
// for the same pattern win.
func RegisterDebugHandler(pattern string, h http.Handler) {
	debugExtrasMu.Lock()
	if debugExtras == nil {
		debugExtras = make(map[string]http.Handler)
	}
	debugExtras[pattern] = h
	debugExtrasMu.Unlock()
}

// MetricsHandler serves the default registry in Prometheus text format.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default().WritePrometheus(w)
	})
}

// TracesHandler serves the retained trace trees as JSON.
func TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteTracesJSON(w)
	})
}

// DebugHandler returns the full debug surface: /metrics, /debug/traces, and
// the net/http/pprof endpoints. Mounted behind -debug-addr on every daemon
// cmd; never exposed on the public service listener except /metrics and
// /debug/traces, which tardis-serve also mounts on its API mux.
func DebugHandler() http.Handler {
	RegisterRuntimeMetrics()
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler())
	mux.Handle("/debug/traces", TracesHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	debugExtrasMu.Lock()
	for pattern, h := range debugExtras {
		mux.Handle(pattern, h)
	}
	debugExtrasMu.Unlock()
	return mux
}

// StartDebugServer binds addr and serves DebugHandler on it in a background
// goroutine, returning the bound address (useful with ":0"). An empty addr
// is a no-op returning "".
func StartDebugServer(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugHandler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
