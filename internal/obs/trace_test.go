package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
)

func TestSpanTreeLocal(t *testing.T) {
	SetTracing(true)
	defer SetTracing(false)
	ResetSpans()

	ctx, root := StartSpan(context.Background(), "query.knn")
	ctx2, child := StartSpan(ctx, "partition.load")
	_, grand := StartSpan(ctx2, "disk.read")
	grand.Annotate("pid", "7")
	grand.Finish()
	child.Finish()
	child.Finish() // double-finish is a no-op
	root.SetError(errors.New("boom"))
	root.Finish()

	spans := Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.TraceID != root.TraceID {
			t.Errorf("span %s has trace %x, want %x", s.Name, s.TraceID, root.TraceID)
		}
	}
	traces := BuildTraces(spans)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	roots := traces[0].Roots
	if len(roots) != 1 || roots[0].Name != "query.knn" {
		t.Fatalf("bad roots: %+v", roots)
	}
	if roots[0].Error != "boom" {
		t.Errorf("root error = %q, want boom", roots[0].Error)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "partition.load" {
		t.Fatalf("bad children: %+v", roots[0].Children)
	}
	gc := roots[0].Children[0].Children
	if len(gc) != 1 || gc[0].Name != "disk.read" {
		t.Fatalf("bad grandchildren: %+v", gc)
	}
	if len(gc[0].Attrs) != 1 || gc[0].Attrs[0].Key != "pid" || gc[0].Attrs[0].Value != "7" {
		t.Errorf("bad attrs: %+v", gc[0].Attrs)
	}
}

func TestRemoteSpanParenting(t *testing.T) {
	SetTracing(true)
	defer SetTracing(false)
	ResetSpans()

	ctx, coord := StartSpan(context.Background(), "rpc.client")
	sc := SpanContextOf(ctx)
	if !sc.Valid() || sc.SpanID != coord.SpanID {
		t.Fatalf("SpanContextOf = %+v, want span %x", sc, coord.SpanID)
	}

	// Simulate the worker side of the RPC: fresh context, remote parent.
	_, remote := StartRemoteSpan(context.Background(), sc, "worker.knn")
	remote.Finish()
	coord.Finish()

	if remote.TraceID != coord.TraceID {
		t.Errorf("remote trace %x, want coordinator's %x", remote.TraceID, coord.TraceID)
	}
	if remote.ParentID != coord.SpanID {
		t.Errorf("remote parent %x, want %x", remote.ParentID, coord.SpanID)
	}
	traces := BuildTraces(Spans())
	if len(traces) != 1 || len(traces[0].Roots) != 1 {
		t.Fatalf("want one trace with one root, got %+v", traces)
	}
}

func TestRemoteSpanWithoutLocalTracing(t *testing.T) {
	// A worker that never called SetTracing(true) must still record spans
	// for propagated contexts — the coordinator made the sampling decision.
	SetTracing(false)
	ResetSpans()
	sc := SpanContext{TraceID: 42, SpanID: 7}
	_, s := StartRemoteSpan(context.Background(), sc, "worker.knn")
	if s == nil {
		t.Fatal("remote span dropped despite valid propagated context")
	}
	s.Finish()
	if got := len(Spans()); got != 1 {
		t.Fatalf("collector has %d spans, want 1", got)
	}
	// An invalid context with tracing off stays a no-op.
	_, s2 := StartRemoteSpan(context.Background(), SpanContext{}, "worker.knn")
	if s2 != nil {
		t.Error("invalid remote context produced a span with tracing off")
	}
}

func TestDisabledTracingZeroAlloc(t *testing.T) {
	SetTracing(false)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, s := StartSpan(ctx, "hot")
		s.Annotate("k", "v")
		s.SetError(nil)
		s.Finish()
		_ = SpanContextOf(c2)
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %v per op, want 0", allocs)
	}
}

func BenchmarkStartSpanDisabled(b *testing.B) {
	SetTracing(false)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "hot")
		s.Finish()
	}
}

func TestOrphanSpansBecomeRoots(t *testing.T) {
	SetTracing(true)
	defer SetTracing(false)
	ResetSpans()
	ctx, root := StartSpan(context.Background(), "root")
	_, child := StartSpan(ctx, "child")
	child.Finish()
	_ = root // never finished: simulates a parent evicted from the ring
	traces := BuildTraces(Spans())
	if len(traces) != 1 || len(traces[0].Roots) != 1 || traces[0].Roots[0].Name != "child" {
		t.Fatalf("orphan should surface as root, got %+v", traces)
	}
}

func TestRingOverflowCountsDrops(t *testing.T) {
	SetTracing(true)
	defer SetTracing(false)
	ResetSpans()
	before := spansDropped.Value()
	for i := 0; i < spanRingSize+10; i++ {
		_, s := StartSpan(context.Background(), "fill")
		s.Finish()
	}
	if got := len(Spans()); got != spanRingSize {
		t.Errorf("ring holds %d spans, want %d", got, spanRingSize)
	}
	if d := spansDropped.Value() - before; d != 10 {
		t.Errorf("dropped counter advanced by %d, want 10", d)
	}
	ResetSpans()
}

func TestWriteTracesJSON(t *testing.T) {
	SetTracing(true)
	defer SetTracing(false)
	ResetSpans()
	ctx, root := StartSpan(context.Background(), "q")
	_, c := StartSpan(ctx, "c")
	c.Finish()
	root.Finish()
	var buf bytes.Buffer
	if err := WriteTracesJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var traces []TraceJSON
	if err := json.Unmarshal(buf.Bytes(), &traces); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(traces) != 1 || len(traces[0].Roots) != 1 {
		t.Fatalf("bad traces: %+v", traces)
	}
	if traces[0].Roots[0].SpanID == "" || len(traces[0].Roots[0].SpanID) != 16 {
		t.Errorf("span id not 16 hex chars: %q", traces[0].Roots[0].SpanID)
	}
	ResetSpans()
}
