package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies a span's position in a trace. It is a plain struct
// of integers so it can ride inside net/rpc (gob) argument structs — net/rpc
// has no metadata channel, so propagation happens by embedding a SpanContext
// field in call args.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// tracingOn gates span creation. When off, StartSpan returns a nil *Span and
// the context unchanged — zero allocations on the disabled path (guarded by
// a test and benchmark).
var tracingOn atomic.Bool

// SetTracing turns span collection on or off process-wide.
func SetTracing(on bool) { tracingOn.Store(on) }

// TracingEnabled reports whether spans are being collected.
func TracingEnabled() bool { return tracingOn.Load() }

// idState seeds span/trace ID generation. splitmix64 over an atomic counter:
// deterministic enough for tests that reseed, unique within a process, no
// crypto dependency.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano()) | 1) }

func nextID() uint64 {
	for {
		x := idState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// Span is one timed operation in a trace. All methods are safe on a nil
// receiver, so disabled-tracing call sites pay nothing and need no guards.
type Span struct {
	Name     string
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Start    time.Time
	// End is set once by Finish (or at construction by RecordSpan). It is
	// written and read under mu so late /debug/traces readers see a
	// consistent value.
	End time.Time

	mu    sync.Mutex
	attrs []Attr // guarded by mu
	err   string // guarded by mu
	done  bool   // guarded by mu
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

type spanCtxKey struct{}

// StartSpan begins a span as a child of the span in ctx (if any), returning
// a derived context carrying the new span. With tracing disabled it returns
// ctx unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !tracingOn.Load() {
		return ctx, nil
	}
	var traceID, parentID uint64
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		traceID = parent.TraceID
		parentID = parent.SpanID
	} else {
		traceID = nextID()
	}
	s := &Span{Name: name, TraceID: traceID, SpanID: nextID(), ParentID: parentID, Start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// StartRemoteSpan begins a span parented to a SpanContext received over RPC.
// It creates a span whenever the remote context is valid — propagation
// implies the coordinator sampled the trace — even if this process has not
// enabled tracing locally; with an invalid context it behaves like
// StartSpan.
func StartRemoteSpan(ctx context.Context, sc SpanContext, name string) (context.Context, *Span) {
	if !sc.Valid() {
		return StartSpan(ctx, name)
	}
	s := &Span{Name: name, TraceID: sc.TraceID, SpanID: nextID(), ParentID: sc.SpanID, Start: time.Now()}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// RecordSpan adds an already-completed span to the collector — for call
// sites that measured an operation themselves (e.g. QueryStats.Duration)
// and want it visible in /debug/traces without restructuring around
// StartSpan. No-op when tracing is off.
func RecordSpan(name string, start, end time.Time, attrs ...Attr) {
	if !tracingOn.Load() {
		return
	}
	s := &Span{Name: name, TraceID: nextID(), SpanID: nextID(), Start: start, End: end, attrs: attrs, done: true}
	collector.add(s)
}

// SpanFromContext returns the active span in ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SpanContextOf returns the propagatable identity of the active span in ctx.
// The zero SpanContext means "no trace" and is what disabled-tracing callers
// embed in RPC args.
func SpanContextOf(ctx context.Context) SpanContext {
	if s, ok := ctx.Value(spanCtxKey{}).(*Span); ok && s != nil {
		return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
	}
	return SpanContext{}
}

// Context returns the span's propagatable identity; nil-safe.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// Annotate attaches a key/value pair; nil-safe.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetError records an error string on the span; nil-safe, nil err ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// Attrs returns a copy of the span's annotations; nil-safe.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Err returns the recorded error message, or "" if none; nil-safe.
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Finish ends the span and hands it to the collector. Finishing twice is a
// no-op; nil-safe.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.End = time.Now()
	s.mu.Unlock()
	collector.add(s)
}

// ---- collector ----

// spanRingSize bounds memory: completed spans land in a ring; once full the
// oldest are overwritten and tardis_obs_spans_dropped_total counts the loss.
const spanRingSize = 8192

type spanRing struct {
	mu    sync.Mutex
	buf   []*Span // guarded by mu
	next  int     // guarded by mu
	total int     // guarded by mu; spans ever added
}

var collector = &spanRing{buf: make([]*Span, spanRingSize)}

var spansDropped = NewCounter("tardis_obs_spans_dropped_total",
	"Completed trace spans overwritten in the bounded span ring before export.")

func (r *spanRing) add(s *Span) {
	r.mu.Lock()
	if r.buf[r.next] != nil {
		spansDropped.Inc()
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	r.total++
	r.mu.Unlock()
}

func (r *spanRing) snapshot() []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Span, 0, len(r.buf))
	for i := 0; i < len(r.buf); i++ {
		if s := r.buf[(r.next+i)%len(r.buf)]; s != nil {
			out = append(out, s)
		}
	}
	return out
}

func (r *spanRing) reset() {
	r.mu.Lock()
	for i := range r.buf {
		r.buf[i] = nil
	}
	r.next, r.total = 0, 0
	r.mu.Unlock()
}

// Spans returns all completed spans currently retained, oldest first.
func Spans() []*Span { return collector.snapshot() }

// ResetSpans clears the collector (tests).
func ResetSpans() { collector.reset() }

// ---- JSON export ----

// SpanJSON is the wire form of one span in /debug/traces output.
type SpanJSON struct {
	Name     string     `json:"name"`
	TraceID  string     `json:"trace_id"`
	SpanID   string     `json:"span_id"`
	ParentID string     `json:"parent_id,omitempty"`
	StartUS  int64      `json:"start_us"`
	DurUS    int64      `json:"dur_us"`
	Error    string     `json:"error,omitempty"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []SpanJSON `json:"children,omitempty"`
}

// TraceJSON is one reconstructed trace tree.
type TraceJSON struct {
	TraceID string     `json:"trace_id"`
	Roots   []SpanJSON `json:"roots"`
}

func hexID(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

func (s *Span) toJSON() SpanJSON {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	errStr := s.err
	end := s.End
	s.mu.Unlock()
	j := SpanJSON{
		Name:    s.Name,
		TraceID: hexID(s.TraceID),
		SpanID:  hexID(s.SpanID),
		StartUS: s.Start.UnixMicro(),
		DurUS:   end.Sub(s.Start).Microseconds(),
		Error:   errStr,
		Attrs:   attrs,
	}
	if s.ParentID != 0 {
		j.ParentID = hexID(s.ParentID)
	}
	return j
}

// BuildTraces groups spans into per-trace trees. Spans whose parent was
// dropped from the ring (or finished elsewhere) become roots, so partial
// traces still render.
func BuildTraces(spans []*Span) []TraceJSON {
	byTrace := map[uint64][]*Span{}
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	traceIDs := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		traceIDs = append(traceIDs, id)
	}
	sort.Slice(traceIDs, func(i, j int) bool {
		return earliest(byTrace[traceIDs[i]]).Before(earliest(byTrace[traceIDs[j]]))
	})
	out := make([]TraceJSON, 0, len(traceIDs))
	for _, tid := range traceIDs {
		group := byTrace[tid]
		present := map[uint64]bool{}
		for _, s := range group {
			present[s.SpanID] = true
		}
		nodes := map[uint64]*SpanJSON{}
		order := make([]uint64, 0, len(group))
		sort.Slice(group, func(i, j int) bool { return group[i].Start.Before(group[j].Start) })
		for _, s := range group {
			j := s.toJSON()
			nodes[s.SpanID] = &j
			order = append(order, s.SpanID)
		}
		var roots []uint64
		for _, s := range group {
			if s.ParentID != 0 && present[s.ParentID] {
				continue
			}
			roots = append(roots, s.SpanID)
		}
		// Attach children bottom-up: later spans first so earlier parents
		// collect fully-built subtrees.
		for i := len(order) - 1; i >= 0; i-- {
			id := order[i]
			s := group[i]
			if s.ParentID == 0 || !present[s.ParentID] {
				continue
			}
			parent := nodes[s.ParentID]
			parent.Children = append([]SpanJSON{*nodes[id]}, parent.Children...)
		}
		t := TraceJSON{TraceID: hexID(tid)}
		for _, id := range roots {
			t.Roots = append(t.Roots, *nodes[id])
		}
		out = append(out, t)
	}
	return out
}

func earliest(spans []*Span) time.Time {
	e := spans[0].Start
	for _, s := range spans[1:] {
		if s.Start.Before(e) {
			e = s.Start
		}
	}
	return e
}

// WriteTracesJSON renders every retained trace as indented JSON.
func WriteTracesJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(BuildTraces(Spans()))
}
