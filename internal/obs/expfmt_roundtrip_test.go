package obs

import (
	"bytes"
	"testing"
)

// TestExpositionEscapeRoundTrip proves the writer's text-format 0.0.4
// escaping of backslashes, quotes, and newlines in HELP text and label
// values survives a round trip through the in-repo parser unchanged.
func TestExpositionEscapeRoundTrip(t *testing.T) {
	r := NewRegistry()
	const help = `tricky help: backslash \ quote " and a
newline`
	c := r.NewCounterVec("tardis_rt_escape_total", help, "path")
	const labelVal = `C:\tmp\"quoted"
line2`
	c.With(labelVal).Add(3)
	r.NewGauge("tardis_rt_plain_entries", "plain help").Set(7)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	exp, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\nexposition:\n%s", err, buf.String())
	}

	fam := exp.Families["tardis_rt_escape_total"]
	if fam == nil {
		t.Fatalf("family missing; got %v", exp.Order)
	}
	if fam.Help != help {
		t.Errorf("HELP did not round-trip:\n got %q\nwant %q", fam.Help, help)
	}
	if len(fam.Samples) != 1 {
		t.Fatalf("want 1 sample, got %d", len(fam.Samples))
	}
	s := fam.Samples[0]
	if got := s.Labels["path"]; got != labelVal {
		t.Errorf("label value did not round-trip:\n got %q\nwant %q", got, labelVal)
	}
	if s.Value != 3 {
		t.Errorf("value = %v, want 3", s.Value)
	}
	if plain := exp.Families["tardis_rt_plain_entries"]; plain == nil || plain.Help != "plain help" {
		t.Errorf("plain family mangled: %+v", plain)
	}
}
