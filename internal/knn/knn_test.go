package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewHeapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	NewHeap(0)
}

func TestHeapKeepsKClosest(t *testing.T) {
	h := NewHeap(3)
	for i := 10; i >= 1; i-- {
		h.Offer(Neighbor{RID: int64(i), Dist: float64(i)})
	}
	got := h.Sorted()
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, want := range []float64{1, 2, 3} {
		if got[i].Dist != want {
			t.Errorf("got[%d].Dist = %v, want %v", i, got[i].Dist, want)
		}
	}
}

func TestHeapBound(t *testing.T) {
	h := NewHeap(2)
	if !math.IsInf(h.Bound(), 1) {
		t.Error("underfull heap bound should be +Inf")
	}
	h.Offer(Neighbor{RID: 1, Dist: 5})
	if !math.IsInf(h.Bound(), 1) {
		t.Error("still underfull")
	}
	h.Offer(Neighbor{RID: 2, Dist: 3})
	if h.Bound() != 5 {
		t.Errorf("bound = %v, want 5", h.Bound())
	}
	h.Offer(Neighbor{RID: 3, Dist: 1})
	if h.Bound() != 3 {
		t.Errorf("bound after eviction = %v, want 3", h.Bound())
	}
}

func TestSortedTieBreak(t *testing.T) {
	h := NewHeap(3)
	h.Offer(Neighbor{RID: 9, Dist: 1})
	h.Offer(Neighbor{RID: 2, Dist: 1})
	h.Offer(Neighbor{RID: 5, Dist: 1})
	got := h.Sorted()
	if got[0].RID != 2 || got[1].RID != 5 || got[2].RID != 9 {
		t.Errorf("tie break by rid failed: %+v", got)
	}
}

// Property: the heap yields exactly the k smallest distances of any stream.
func TestHeapSelectsKSmallestProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		dists := make([]float64, n)
		h := NewHeap(k)
		for i := range dists {
			dists[i] = rng.Float64() * 100
			h.Offer(Neighbor{RID: int64(i), Dist: dists[i]})
		}
		sort.Float64s(dists)
		got := h.Sorted()
		want := k
		if n < k {
			want = n
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i].Dist != dists[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// BoundAtomic must track Bound exactly after every offer — it is the
// lock-free snapshot the parallel query workers prune with.
func TestBoundAtomicTracksBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHeap(5)
	if !math.IsInf(h.BoundAtomic(), 1) {
		t.Fatal("fresh heap BoundAtomic should be +Inf")
	}
	for i := 0; i < 500; i++ {
		h.Offer(Neighbor{RID: int64(i), Dist: rng.Float64() * 10})
		if h.Bound() != h.BoundAtomic() {
			t.Fatalf("after offer %d: Bound %v != BoundAtomic %v", i, h.Bound(), h.BoundAtomic())
		}
	}
}

// At equal distances the canonical ordering must evict the larger RID, so
// the retained set is a pure function of the offered multiset — the
// property the parallel == serial determinism rests on.
func TestCanonicalTieBreakEviction(t *testing.T) {
	offers := []Neighbor{
		{RID: 30, Dist: 2}, {RID: 10, Dist: 2}, {RID: 20, Dist: 2}, {RID: 40, Dist: 2},
	}
	// Every permutation of the offers must retain {10, 20} for k=2.
	perm := func(order []int) []int64 {
		h := NewHeap(2)
		for _, i := range order {
			h.Offer(offers[i])
		}
		got := h.Sorted()
		rids := make([]int64, len(got))
		for i, n := range got {
			rids[i] = n.RID
		}
		return rids
	}
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
	for _, order := range orders {
		rids := perm(order)
		if len(rids) != 2 || rids[0] != 10 || rids[1] != 20 {
			t.Errorf("order %v retained %v, want [10 20]", order, rids)
		}
	}
}

// Property: the retained set is order-independent — any two shuffles of the
// same offer stream leave identical Sorted() output, including ties.
func TestHeapOrderIndependenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		k := 1 + rng.Intn(10)
		offers := make([]Neighbor, n)
		for i := range offers {
			// Coarse distances force plenty of ties.
			offers[i] = Neighbor{RID: int64(i), Dist: float64(rng.Intn(8))}
		}
		run := func() []Neighbor {
			h := NewHeap(k)
			for _, j := range rng.Perm(n) {
				h.Offer(offers[j])
			}
			return h.Sorted()
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRecall(t *testing.T) {
	truth := []Neighbor{{RID: 1}, {RID: 2}, {RID: 3}, {RID: 4}}
	result := []Neighbor{{RID: 2}, {RID: 4}, {RID: 9}, {RID: 10}}
	if r := Recall(truth, result); r != 0.5 {
		t.Errorf("recall = %v, want 0.5", r)
	}
	if r := Recall(nil, result); r != 0 {
		t.Errorf("empty truth recall = %v", r)
	}
	if r := Recall(truth, nil); r != 0 {
		t.Errorf("empty result recall = %v", r)
	}
	if r := Recall(truth, truth); r != 1 {
		t.Errorf("perfect recall = %v", r)
	}
}

func TestErrorRatio(t *testing.T) {
	truth := []Neighbor{{RID: 1, Dist: 1}, {RID: 2, Dist: 2}}
	result := []Neighbor{{RID: 3, Dist: 2}, {RID: 4, Dist: 3}}
	want := (2.0/1.0 + 3.0/2.0) / 2
	if er := ErrorRatio(truth, result); math.Abs(er-want) > 1e-12 {
		t.Errorf("error ratio = %v, want %v", er, want)
	}
	if er := ErrorRatio(truth, truth); er != 1 {
		t.Errorf("perfect error ratio = %v", er)
	}
	if er := ErrorRatio(nil, nil); er != 1 {
		t.Errorf("empty error ratio = %v", er)
	}
	// Zero truth distance handling.
	zt := []Neighbor{{RID: 1, Dist: 0}, {RID: 2, Dist: 1}}
	zr := []Neighbor{{RID: 1, Dist: 0}, {RID: 2, Dist: 2}}
	if er := ErrorRatio(zt, zr); math.Abs(er-1.5) > 1e-12 {
		t.Errorf("zero-dist error ratio = %v, want 1.5", er)
	}
	// Zero truth, nonzero result: skipped pair.
	zr2 := []Neighbor{{RID: 9, Dist: 5}, {RID: 2, Dist: 2}}
	if er := ErrorRatio(zt, zr2); math.Abs(er-2) > 1e-12 {
		t.Errorf("skip-pair error ratio = %v, want 2", er)
	}
	// All pairs skipped.
	if er := ErrorRatio([]Neighbor{{RID: 1, Dist: 0}}, []Neighbor{{RID: 2, Dist: 3}}); er != 1 {
		t.Errorf("all-skipped error ratio = %v, want 1", er)
	}
}

// Property: error ratio of a correct algorithm (result distances >= truth,
// pairwise) is always >= 1.
func TestErrorRatioAtLeastOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(20)
		truth := make([]Neighbor, k)
		result := make([]Neighbor, k)
		prev := 0.0
		for i := 0; i < k; i++ {
			prev += rng.Float64()
			truth[i] = Neighbor{RID: int64(i), Dist: prev}
			result[i] = Neighbor{RID: int64(i + 1000), Dist: prev + rng.Float64()}
		}
		return ErrorRatio(truth, result) >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
