// Package knn provides the shared k-nearest-neighbor machinery used by both
// TARDIS and the DPiSAX baseline: a bounded result heap and the evaluation
// metrics of the paper's §VI-C2 — recall (Eq. 5) and error ratio (Eq. 6).
package knn

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Neighbor is one kNN answer: a record id and its Euclidean distance to the
// query.
type Neighbor struct {
	RID  int64
	Dist float64
}

// Heap is a bounded max-heap keeping the k closest neighbors offered. It
// deduplicates by record id: query strategies that widen their candidate
// scope (One-Partition, Multi-Partitions access) naturally re-encounter
// records already refined by the target-node step, and a record must appear
// at most once in a kNN answer.
//
// The heap order is maintained with explicit sift loops rather than
// container/heap: heap.Interface takes values as any, which boxes a
// Neighbor on every push — one allocation per candidate on the query hot
// path.
//
// Ordering is by the (Dist, RID) tuple, not distance alone: when candidates
// tie at the kth distance, the smaller record id wins. This makes the heap's
// content a pure function of the offered multiset — the canonical k smallest
// (Dist, RID) pairs — independent of offer order, which is what lets the
// parallel query paths guarantee results identical to the serial ones.
type Heap struct {
	items  []Neighbor
	member map[int64]struct{}
	k      int
	// boundBits mirrors Bound() as math.Float64bits for lock-free snapshot
	// reads by concurrent qpar workers while another worker mutates the heap
	// under the owner's lock.
	boundBits atomic.Uint64
}

// NewHeap creates a heap bounded at k results. k must be positive.
func NewHeap(k int) *Heap {
	if k < 1 {
		panic(fmt.Sprintf("knn: heap size must be positive, got %d", k))
	}
	h := &Heap{k: k, member: make(map[int64]struct{}, k+1)}
	h.boundBits.Store(math.Float64bits(math.Inf(1)))
	return h
}

// farther reports whether a sorts after b in the canonical (Dist, RID)
// order — the max-heap comparison.
//
//tardis:hotpath
func farther(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.RID > b.RID
}

// Len returns the number of neighbors currently held.
func (h *Heap) Len() int { return len(h.items) }

// Offer adds a candidate, keeping only the k closest. A record id already in
// the heap is ignored (a record's distance to the query is unique).
//
//tardis:hotpath
func (h *Heap) Offer(n Neighbor) {
	if _, ok := h.member[n.RID]; ok {
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, n)
		h.member[n.RID] = struct{}{}
		h.siftUp(len(h.items) - 1)
		if len(h.items) == h.k {
			h.boundBits.Store(math.Float64bits(h.items[0].Dist))
		}
		return
	}
	if farther(h.items[0], n) {
		delete(h.member, h.items[0].RID)
		h.items[0] = n
		h.member[n.RID] = struct{}{}
		h.siftDown(0)
		h.boundBits.Store(math.Float64bits(h.items[0].Dist))
	}
}

// siftUp restores max-heap order after appending at index i.
//
//tardis:hotpath
func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !farther(h.items[i], h.items[parent]) {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

// siftDown restores max-heap order after replacing the root at index i.
//
//tardis:hotpath
func (h *Heap) siftDown(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		big := left
		if right := left + 1; right < n && farther(h.items[right], h.items[left]) {
			big = right
		}
		if !farther(h.items[big], h.items[i]) {
			return
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
}

// Contains reports whether the record id is currently in the heap.
func (h *Heap) Contains(rid int64) bool {
	_, ok := h.member[rid]
	return ok
}

// Bound returns the current kth distance, or +Inf while underfull — the
// early-abandon threshold for refinement.
//
//tardis:hotpath
func (h *Heap) Bound() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

// BoundAtomic returns the same value as Bound via a lock-free atomic load.
// Parallel query workers snapshot the shared pruning threshold through it
// without taking the lock that serializes Offer; the snapshot may lag a
// concurrent Offer by one update, which only loosens pruning and never
// affects correctness (the published bound is monotonically non-increasing).
//
//tardis:hotpath
func (h *Heap) BoundAtomic() float64 {
	return math.Float64frombits(h.boundBits.Load())
}

// Members returns a snapshot copy of the record ids currently held. Parallel
// refinement uses it to pre-filter candidates already refined by a serial
// seeding step without touching the live map concurrently.
func (h *Heap) Members() map[int64]struct{} {
	out := make(map[int64]struct{}, len(h.member))
	for rid := range h.member {
		out[rid] = struct{}{}
	}
	return out
}

// Sorted returns the neighbors in ascending distance order (ties broken by
// record id for determinism).
func (h *Heap) Sorted() []Neighbor {
	out := make([]Neighbor, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].RID < out[j].RID
	})
	return out
}

// Recall computes |G ∩ R| / |G| (paper Eq. 5) between the ground truth and a
// result set. An empty ground truth yields 0.
func Recall(truth, result []Neighbor) float64 {
	if len(truth) == 0 {
		return 0
	}
	in := make(map[int64]struct{}, len(result))
	for _, r := range result {
		in[r.RID] = struct{}{}
	}
	hits := 0
	for _, g := range truth {
		if _, ok := in[g.RID]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// ErrorRatio computes (1/k) Σ d(q, r_j)/d(q, g_j) (paper Eq. 6) over the
// first min(len(truth), len(result)) pairs. Pairs whose true distance is
// zero contribute 1 when the result distance is also zero, and are skipped
// otherwise (the paper's data has no exact duplicates in ground truth). It
// returns 1 for empty inputs; the ideal value is 1 and larger is worse.
func ErrorRatio(truth, result []Neighbor) float64 {
	n := len(truth)
	if len(result) < n {
		n = len(result)
	}
	if n == 0 {
		return 1
	}
	var sum float64
	counted := 0
	for j := 0; j < n; j++ {
		g, r := truth[j].Dist, result[j].Dist
		switch {
		case g == 0 && r == 0:
			sum++
			counted++
		case g == 0:
			// Undefined ratio; skip as the paper's formulation assumes
			// nonzero truth distances.
		default:
			sum += r / g
			counted++
		}
	}
	if counted == 0 {
		return 1
	}
	return sum / float64(counted)
}
