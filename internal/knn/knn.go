// Package knn provides the shared k-nearest-neighbor machinery used by both
// TARDIS and the DPiSAX baseline: a bounded result heap and the evaluation
// metrics of the paper's §VI-C2 — recall (Eq. 5) and error ratio (Eq. 6).
package knn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Neighbor is one kNN answer: a record id and its Euclidean distance to the
// query.
type Neighbor struct {
	RID  int64
	Dist float64
}

// Heap is a bounded max-heap keeping the k closest neighbors offered. It
// deduplicates by record id: query strategies that widen their candidate
// scope (One-Partition, Multi-Partitions access) naturally re-encounter
// records already refined by the target-node step, and a record must appear
// at most once in a kNN answer.
type Heap struct {
	items  []Neighbor
	member map[int64]struct{}
	k      int
}

// NewHeap creates a heap bounded at k results. k must be positive.
func NewHeap(k int) *Heap {
	if k < 1 {
		panic(fmt.Sprintf("knn: heap size must be positive, got %d", k))
	}
	return &Heap{k: k, member: make(map[int64]struct{}, k+1)}
}

func (h *Heap) Len() int           { return len(h.items) }
func (h *Heap) Less(i, j int) bool { return h.items[i].Dist > h.items[j].Dist }
func (h *Heap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }

// Push implements heap.Interface; use Offer instead.
func (h *Heap) Push(x any) { h.items = append(h.items, x.(Neighbor)) }

// Pop implements heap.Interface; use Sorted instead.
func (h *Heap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// Offer adds a candidate, keeping only the k closest. A record id already in
// the heap is ignored (a record's distance to the query is unique).
func (h *Heap) Offer(n Neighbor) {
	if _, ok := h.member[n.RID]; ok {
		return
	}
	if len(h.items) < h.k {
		heap.Push(h, n)
		h.member[n.RID] = struct{}{}
		return
	}
	if n.Dist < h.items[0].Dist {
		delete(h.member, h.items[0].RID)
		h.items[0] = n
		h.member[n.RID] = struct{}{}
		heap.Fix(h, 0)
	}
}

// Contains reports whether the record id is currently in the heap.
func (h *Heap) Contains(rid int64) bool {
	_, ok := h.member[rid]
	return ok
}

// Bound returns the current kth distance, or +Inf while underfull — the
// early-abandon threshold for refinement.
func (h *Heap) Bound() float64 {
	if len(h.items) < h.k {
		return math.Inf(1)
	}
	return h.items[0].Dist
}

// Sorted returns the neighbors in ascending distance order (ties broken by
// record id for determinism).
func (h *Heap) Sorted() []Neighbor {
	out := make([]Neighbor, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].RID < out[j].RID
	})
	return out
}

// Recall computes |G ∩ R| / |G| (paper Eq. 5) between the ground truth and a
// result set. An empty ground truth yields 0.
func Recall(truth, result []Neighbor) float64 {
	if len(truth) == 0 {
		return 0
	}
	in := make(map[int64]struct{}, len(result))
	for _, r := range result {
		in[r.RID] = struct{}{}
	}
	hits := 0
	for _, g := range truth {
		if _, ok := in[g.RID]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(truth))
}

// ErrorRatio computes (1/k) Σ d(q, r_j)/d(q, g_j) (paper Eq. 6) over the
// first min(len(truth), len(result)) pairs. Pairs whose true distance is
// zero contribute 1 when the result distance is also zero, and are skipped
// otherwise (the paper's data has no exact duplicates in ground truth). It
// returns 1 for empty inputs; the ideal value is 1 and larger is worse.
func ErrorRatio(truth, result []Neighbor) float64 {
	n := len(truth)
	if len(result) < n {
		n = len(result)
	}
	if n == 0 {
		return 1
	}
	var sum float64
	counted := 0
	for j := 0; j < n; j++ {
		g, r := truth[j].Dist, result[j].Dist
		switch {
		case g == 0 && r == 0:
			sum++
			counted++
		case g == 0:
			// Undefined ratio; skip as the paper's formulation assumes
			// nonzero truth distances.
		default:
			sum += r / g
			counted++
		}
	}
	if counted == 0 {
		return 1
	}
	return sum / float64(counted)
}
