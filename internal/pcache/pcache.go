// Package pcache provides the memory-bounded partition cache that keeps hot
// decoded partitions resident between queries. The paper's latency analysis
// (§V-A) treats the partition load — open, decompress, checksum, decode — as
// the dominant query cost; without a cache every warm query pays that cold
// cost again. The cache is:
//
//   - sharded: keys hash to independent shards, so concurrent queries on
//     different partitions never contend on one mutex;
//   - byte-bounded: the budget is expressed in bytes of decoded partition
//     data, not entry counts, and least-recently-used partitions are evicted
//     until the resident set fits (Odyssey-style hot-partition residency);
//   - load-deduplicated: concurrent misses on the same key share one load
//     (singleflight), so N queries racing on a cold partition trigger
//     exactly one disk read.
//
// The cached value is a Partition: an arena-backed decoded partition holding
// every series in one contiguous []float64 plus a rid→offset index — one
// allocation per partition instead of one per record (the Coconut argument:
// contiguous buffer layouts are what make series indexes scale).
package pcache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/ts"
)

// Partition is an immutable decoded partition: record ids in file order and
// their values packed into one contiguous arena. Series returns slices into
// the arena; callers must not mutate them.
type Partition struct {
	seriesLen int
	rids      []int64
	values    []float64     // len(rids) * seriesLen, record-major
	offsets   map[int64]int // rid → record index
}

// NewPartition wraps an arena-decoded partition. values must hold
// len(rids)*seriesLen floats in record order.
func NewPartition(rids []int64, values []float64, seriesLen int) (*Partition, error) {
	if seriesLen < 1 {
		return nil, fmt.Errorf("pcache: series length must be positive, got %d", seriesLen)
	}
	if len(values) != len(rids)*seriesLen {
		return nil, fmt.Errorf("pcache: arena length %d != %d records × length %d", len(values), len(rids), seriesLen)
	}
	offsets := make(map[int64]int, len(rids))
	for i, rid := range rids {
		offsets[rid] = i
	}
	return &Partition{seriesLen: seriesLen, rids: rids, values: values, offsets: offsets}, nil
}

// Len returns the record count.
func (p *Partition) Len() int { return len(p.rids) }

// SeriesLen returns the fixed series length.
func (p *Partition) SeriesLen() int { return p.seriesLen }

// RIDs returns the record ids in file order (shared slice; do not mutate).
func (p *Partition) RIDs() []int64 { return p.rids }

// Series returns the series for a record id as a slice into the arena.
func (p *Partition) Series(rid int64) (ts.Series, bool) {
	i, ok := p.offsets[rid]
	if !ok {
		return nil, false
	}
	return p.at(i), true
}

// At returns record i in file order.
func (p *Partition) At(i int) (int64, ts.Series) {
	return p.rids[i], p.at(i)
}

func (p *Partition) at(i int) ts.Series {
	return ts.Series(p.values[i*p.seriesLen : (i+1)*p.seriesLen : (i+1)*p.seriesLen])
}

// SizeBytes approximates the resident memory of the decoded partition: the
// arena, the rid slice, and the offset index (~3 words per map entry).
func (p *Partition) SizeBytes() int64 {
	return int64(len(p.values))*8 + int64(len(p.rids))*8 + int64(len(p.offsets))*24
}

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	// Hits counts Gets served from resident entries, including waiters that
	// joined an in-flight load (they paid no disk read of their own).
	Hits int64
	// Misses counts loads actually performed; when every partition read goes
	// through the cache, Misses equals the store's PartitionsRead.
	Misses int64
	// Evictions counts entries dropped to respect the byte budget.
	Evictions int64
	// Invalidations counts entries dropped by explicit Invalidate/Clear.
	Invalidations int64
	// Bytes is the current resident size; Entries the resident entry count.
	Bytes   int64
	Entries int64
	// Budget is the configured byte budget.
	Budget int64
}

// Cache is a sharded, byte-bounded LRU of decoded partitions with
// singleflight load deduplication. K identifies a partition (an int pid for
// a single store, a composite key when one cache fronts many stores).
type Cache[K comparable] struct {
	shards []*shard[K]
	hash   func(K) uint64
	budget int64

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// entry is one resident partition on a shard's LRU list.
type entry[K comparable] struct {
	key        K
	p          *Partition
	bytes      int64
	prev, next *entry[K] // intrusive LRU list; mutated only with the shard's mu held
}

// flight is one in-progress load; waiters block on done.
type flight struct {
	done chan struct{}
	p    *Partition
	err  error
}

type shard[K comparable] struct {
	budget int64

	mu      sync.Mutex
	entries map[K]*entry[K] // guarded by mu
	loading map[K]*flight   // guarded by mu
	bytes   int64           // guarded by mu
	head    *entry[K]       // guarded by mu; most recently used
	tail    *entry[K]       // guarded by mu; least recently used
}

// DefaultShards is the shard count used when New is given zero.
const DefaultShards = 8

// New creates a cache with the given byte budget, split evenly across
// nShards shards (0 picks DefaultShards). hash spreads keys over shards.
// budgetBytes must be positive; a caller that wants no caching should not
// construct a Cache at all.
func New[K comparable](budgetBytes int64, nShards int, hash func(K) uint64) (*Cache[K], error) {
	if budgetBytes < 1 {
		return nil, fmt.Errorf("pcache: byte budget must be positive, got %d", budgetBytes)
	}
	if nShards <= 0 {
		nShards = DefaultShards
	}
	if hash == nil {
		return nil, fmt.Errorf("pcache: hash function is required")
	}
	c := &Cache[K]{shards: make([]*shard[K], nShards), hash: hash, budget: budgetBytes}
	mBudgetBytes.Add(budgetBytes)
	per := budgetBytes / int64(nShards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard[K]{
			budget:  per,
			entries: make(map[K]*entry[K]),
			loading: make(map[K]*flight),
		}
	}
	return c, nil
}

func (c *Cache[K]) shardFor(key K) *shard[K] {
	return c.shards[c.hash(key)%uint64(len(c.shards))]
}

// Get returns the partition for key, loading it with load on a miss. It
// reports whether the call was served without performing a load itself (a
// resident hit or a joined in-flight load). Concurrent Gets for the same key
// run load exactly once; every waiter receives the same partition or error.
// A failed load is not cached.
//
// ctx bounds only the join-wait: a Get that joins another goroutine's
// in-flight load returns ctx.Err() as soon as ctx is cancelled. The loading
// goroutine itself always runs load to completion so the flight lands for
// the remaining waiters — cancelling one waiter never poisons the cache.
func (c *Cache[K]) Get(ctx context.Context, key K, load func() (*Partition, error)) (*Partition, bool, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		mHits.Inc()
		return e.p, true, nil
	}
	if fl, ok := s.loading[key]; ok {
		s.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if fl.err != nil {
			return nil, false, fl.err
		}
		c.hits.Add(1)
		mHits.Inc()
		return fl.p, true, nil
	}
	// This goroutine becomes the loader.
	fl := &flight{done: make(chan struct{})}
	s.loading[key] = fl
	s.mu.Unlock()

	p, err := load() //tardislint:ignore ctxflow the loader runs to completion by design so the flight lands for every waiter
	fl.p, fl.err = p, err

	s.mu.Lock()
	delete(s.loading, key)
	if err == nil {
		c.misses.Add(1)
		mMisses.Inc()
		c.insertLocked(s, key, p)
	}
	s.mu.Unlock()
	close(fl.done)
	if err != nil {
		return nil, false, err
	}
	return p, false, nil
}

// insertLocked admits a freshly loaded partition and evicts from the LRU
// tail until the shard fits its budget. An entry larger than the whole shard
// budget is not admitted at all — it would only evict everything else and
// then be evicted by the next insert anyway.
func (c *Cache[K]) insertLocked(s *shard[K], key K, p *Partition) {
	b := p.SizeBytes()
	if b > s.budget {
		return
	}
	if old, ok := s.entries[key]; ok {
		// Lost a race with another loader of the same key (cannot happen with
		// singleflight, but Invalidate+reload interleavings keep this cheap
		// to defend): replace the resident entry.
		c.removeLocked(s, old, &c.invalidations, mInvalidations)
	}
	e := &entry[K]{key: key, p: p, bytes: b}
	s.entries[key] = e
	s.bytes += b //tardislint:ignore lockflow caller holds mu
	mResidentBytes.Add(b)
	mResidentEntries.Add(1)
	s.pushFront(e)
	for s.bytes > s.budget && s.tail != nil && s.tail != e { //tardislint:ignore lockflow caller holds mu
		c.removeLocked(s, s.tail, &c.evictions, mEvictions)
	}
}

// removeLocked unlinks an entry and charges the given counters (the
// per-instance atomic read by Stats and the process-wide exported one).
func (c *Cache[K]) removeLocked(s *shard[K], e *entry[K], counter *atomic.Int64, metric *obs.Counter) {
	delete(s.entries, e.key)
	s.bytes -= e.bytes //tardislint:ignore lockflow caller holds mu
	mResidentBytes.Add(-e.bytes)
	mResidentEntries.Add(-1)
	s.unlink(e)
	counter.Add(1)
	metric.Inc()
}

// Invalidate drops the entry for key, if resident. An in-flight load is not
// interrupted: invalidation during a load only matters to callers that
// mutate the underlying partition, and those must invalidate after the
// rewrite completes (by which time the flight has landed).
func (c *Cache[K]) Invalidate(key K) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		c.removeLocked(s, e, &c.invalidations, mInvalidations)
	}
	s.mu.Unlock()
}

// Clear drops every resident entry.
func (c *Cache[K]) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		for _, e := range s.entries {
			c.removeLocked(s, e, &c.invalidations, mInvalidations)
		}
		s.mu.Unlock()
	}
}

// ResetCounters zeroes the hit/miss/eviction/invalidation counters without
// touching resident entries.
func (c *Cache[K]) ResetCounters() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.invalidations.Store(0)
}

// Stats snapshots the cache counters and resident size.
func (c *Cache[K]) Stats() Stats {
	st := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Budget:        c.budget,
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Bytes += s.bytes
		st.Entries += int64(len(s.entries))
		s.mu.Unlock()
	}
	return st
}

// Contains reports whether key is resident (without touching LRU order).
func (c *Cache[K]) Contains(key K) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	_, ok := s.entries[key]
	s.mu.Unlock()
	return ok
}

// ---- intrusive LRU list (guarded by the shard mutex) ----

func (s *shard[K]) pushFront(e *entry[K]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[K]) unlink(e *entry[K]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[K]) moveToFront(e *entry[K]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// HashInt mixes an int key for shard selection (SplitMix64 finalizer-style).
func HashInt(v int) uint64 {
	h := uint64(v) * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return h
}
