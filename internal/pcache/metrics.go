package pcache

import "github.com/tardisdb/tardis/internal/obs"

// Process-wide cache telemetry. A process may hold several Cache instances
// (the coordinator's index cache, a worker's data cache); the metrics sum
// across them — delta updates at the insert/remove choke points keep the
// resident gauges exact without per-instance registration. Per-instance
// figures remain available through Stats, which reads the same counters the
// metrics are fed from, so /stats and /metrics can never disagree.
var (
	mHits = obs.NewCounter("tardis_pcache_hits_total",
		"Partition cache gets served without a load (resident hit or joined in-flight load).")
	mMisses = obs.NewCounter("tardis_pcache_misses_total",
		"Partition cache loads actually performed.")
	mEvictions = obs.NewCounter("tardis_pcache_evictions_total",
		"Partitions evicted to respect the byte budget.")
	mInvalidations = obs.NewCounter("tardis_pcache_invalidations_total",
		"Partitions dropped by explicit Invalidate/Clear.")
	mResidentBytes = obs.NewGauge("tardis_pcache_resident_bytes",
		"Decoded partition bytes currently resident, summed across caches.")
	mResidentEntries = obs.NewGauge("tardis_pcache_resident_entries",
		"Partitions currently resident, summed across caches.")
	mBudgetBytes = obs.NewGauge("tardis_pcache_budget_bytes",
		"Configured byte budgets, summed across caches.")
)
