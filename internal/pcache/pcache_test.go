package pcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// testPartition builds a partition with n records of the given series length
// whose rids are base, base+1, ...
func testPartition(t *testing.T, base int64, n, slen int) *Partition {
	t.Helper()
	rids := make([]int64, n)
	values := make([]float64, n*slen)
	for i := range rids {
		rids[i] = base + int64(i)
		for j := 0; j < slen; j++ {
			values[i*slen+j] = float64(i*slen + j)
		}
	}
	p, err := NewPartition(rids, values, slen)
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	return p
}

func TestPartitionAccessors(t *testing.T) {
	p := testPartition(t, 100, 3, 4)
	if p.Len() != 3 || p.SeriesLen() != 4 {
		t.Fatalf("Len=%d SeriesLen=%d, want 3/4", p.Len(), p.SeriesLen())
	}
	s, ok := p.Series(101)
	if !ok || len(s) != 4 || s[0] != 4 {
		t.Fatalf("Series(101) = %v, %v", s, ok)
	}
	if _, ok := p.Series(999); ok {
		t.Fatal("Series(999) should miss")
	}
	rid, s2 := p.At(2)
	if rid != 102 || s2[0] != 8 {
		t.Fatalf("At(2) = %d, %v", rid, s2)
	}
	// Arena slices are capped: appending must not clobber the next record.
	grown := append(s, 42)
	if got, _ := p.Series(102); got[0] != 8 {
		t.Fatalf("append to arena slice leaked into next record: %v (grown=%v)", got, grown)
	}
}

func TestPartitionValidation(t *testing.T) {
	if _, err := NewPartition([]int64{1}, []float64{1, 2, 3}, 2); err == nil {
		t.Fatal("mismatched arena length should error")
	}
	if _, err := NewPartition(nil, nil, 0); err == nil {
		t.Fatal("zero series length should error")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c, err := New[int](1<<20, 2, HashInt)
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	load := func() (*Partition, error) {
		loads++
		return testPartition(t, 0, 2, 4), nil
	}
	p1, hit, err := c.Get(context.Background(), 7, load)
	if err != nil || hit {
		t.Fatalf("first Get: hit=%v err=%v", hit, err)
	}
	p2, hit, err := c.Get(context.Background(), 7, load)
	if err != nil || !hit {
		t.Fatalf("second Get: hit=%v err=%v", hit, err)
	}
	if p1 != p2 {
		t.Fatal("hit returned a different partition")
	}
	if loads != 1 {
		t.Fatalf("loads = %d, want 1", loads)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != p1.SizeBytes() {
		t.Fatalf("bytes = %d, want %d", st.Bytes, p1.SizeBytes())
	}
}

// TestSingleflight is the dedup-under-race satellite: many goroutines miss
// the same key concurrently and exactly one load must run.
func TestSingleflight(t *testing.T) {
	c, err := New[int](1<<20, 4, HashInt)
	if err != nil {
		t.Fatal(err)
	}
	var loads atomic.Int64
	ready := make(chan struct{})
	const goroutines = 32
	var wg sync.WaitGroup
	ps := make([]*Partition, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-ready
			p, _, err := c.Get(context.Background(), 42, func() (*Partition, error) {
				loads.Add(1)
				return testPartition(t, 0, 8, 16), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			ps[g] = p
		}(g)
	}
	close(ready)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if ps[g] != ps[0] {
			t.Fatalf("goroutine %d got a different partition", g)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, goroutines-1)
	}
}

// TestJoinWaitCancellation: a Get that joins an in-flight load must return
// ctx.Err() when cancelled, while the loader runs to completion and lands
// the flight for later callers.
func TestJoinWaitCancellation(t *testing.T) {
	c, err := New[int](1<<20, 1, HashInt)
	if err != nil {
		t.Fatal(err)
	}
	loading := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := c.Get(context.Background(), 9, func() (*Partition, error) {
			close(loading)
			<-release
			return testPartition(t, 0, 4, 8), nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-loading
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Get(ctx, 9, func() (*Partition, error) {
		t.Error("joined waiter must not run its own load")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled join-wait returned %v, want context.Canceled", err)
	}
	close(release)
	<-done
	if _, hit, err := c.Get(context.Background(), 9, func() (*Partition, error) {
		t.Error("partition should be resident after the flight lands")
		return nil, nil
	}); err != nil || !hit {
		t.Fatalf("post-flight Get = (hit=%v, err=%v), want resident hit", hit, err)
	}
}

func TestSingleflightErrorPropagation(t *testing.T) {
	c, err := New[int](1<<20, 1, HashInt)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk gone")
	var loads atomic.Int64
	ready := make(chan struct{})
	started := make(chan struct{})
	errs := make(chan error, 2)
	go func() {
		_, _, err := c.Get(context.Background(), 1, func() (*Partition, error) {
			close(started)
			<-ready
			loads.Add(1)
			return nil, boom
		})
		errs <- err
	}()
	<-started
	go func() {
		_, _, err := c.Get(context.Background(), 1, func() (*Partition, error) {
			loads.Add(1)
			return nil, boom
		})
		errs <- err
	}()
	close(ready)
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, boom) {
			t.Fatalf("err = %v, want %v", err, boom)
		}
	}
	// The failed load must not be cached; the next Get loads again.
	_, _, err = c.Get(context.Background(), 1, func() (*Partition, error) {
		loads.Add(1)
		return testPartition(t, 0, 1, 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 (leader) + 0..1 (follower joined flight or re-loaded) + 1 (retry).
	if n := loads.Load(); n < 2 || n > 3 {
		t.Fatalf("loads = %d, want 2 or 3", n)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (failed loads are not misses)", st.Misses)
	}
}

// TestEvictionOrder pins the byte-budget LRU policy: with a budget of three
// partitions, inserting a fourth evicts the least recently used, and a
// Get refreshes recency.
func TestEvictionOrder(t *testing.T) {
	one := testPartition(t, 0, 2, 4)
	per := one.SizeBytes()
	// Single shard so the LRU order is global and deterministic.
	c, err := New[int](per*3, 1, HashInt)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(k int) func() (*Partition, error) {
		return func() (*Partition, error) { return testPartition(t, int64(k*100), 2, 4), nil }
	}
	for k := 1; k <= 3; k++ {
		if _, _, err := c.Get(context.Background(), k, mk(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes LRU.
	if _, hit, _ := c.Get(context.Background(), 1, mk(1)); !hit {
		t.Fatal("key 1 should be resident")
	}
	// Insert 4 → evicts 2, keeps 1, 3, 4.
	if _, _, err := c.Get(context.Background(), 4, mk(4)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes != per*3 {
		t.Fatalf("stats = %+v, want 1 eviction, 3 entries, %d bytes", st, per*3)
	}
	for k, want := range map[int]bool{1: true, 2: false, 3: true, 4: true} {
		if got := c.Contains(k); got != want {
			t.Fatalf("Contains(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestOversizeEntryNotCached(t *testing.T) {
	small := testPartition(t, 0, 1, 2)
	c, err := New[int](small.SizeBytes(), 1, HashInt)
	if err != nil {
		t.Fatal(err)
	}
	big := testPartition(t, 0, 64, 64)
	loads := 0
	load := func() (*Partition, error) { loads++; return big, nil }
	p, _, err := c.Get(context.Background(), 1, load)
	if err != nil || p != big {
		t.Fatalf("oversize load: %v, %v", p, err)
	}
	if c.Contains(1) {
		t.Fatal("oversize entry must not be admitted")
	}
	if _, _, err := c.Get(context.Background(), 1, load); err != nil {
		t.Fatal(err)
	}
	if loads != 2 {
		t.Fatalf("loads = %d, want 2 (oversize entries reload every time)", loads)
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want empty cache", st)
	}
}

func TestInvalidate(t *testing.T) {
	c, err := New[int](1<<20, 2, HashInt)
	if err != nil {
		t.Fatal(err)
	}
	gen := 0
	load := func() (*Partition, error) {
		gen++
		return testPartition(t, int64(gen*1000), 1, 2), nil
	}
	p1, _, _ := c.Get(context.Background(), 5, load)
	c.Invalidate(5)
	if c.Contains(5) {
		t.Fatal("key 5 still resident after Invalidate")
	}
	p2, hit, _ := c.Get(context.Background(), 5, load)
	if hit || p2 == p1 {
		t.Fatal("Get after Invalidate must reload")
	}
	if p2.RIDs()[0] != 2000 {
		t.Fatalf("stale data after invalidate: rid %d", p2.RIDs()[0])
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	// Invalidating an absent key is a no-op.
	c.Invalidate(99)
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d after no-op, want 1", st.Invalidations)
	}
}

func TestClearAndResetCounters(t *testing.T) {
	c, err := New[int](1<<20, 4, HashInt)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		k := k
		if _, _, err := c.Get(context.Background(), k, func() (*Partition, error) {
			return testPartition(t, int64(k), 1, 2), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Clear()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Invalidations != 10 {
		t.Fatalf("after Clear: %+v", st)
	}
	c.ResetCounters()
	st = c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Invalidations != 0 {
		t.Fatalf("after ResetCounters: %+v", st)
	}
}

// TestConcurrentMixedKeys hammers the cache across shards under -race:
// concurrent Gets, Invalidates, and Stats must be data-race free and every
// Get must observe the partition its loader produced for that key.
func TestConcurrentMixedKeys(t *testing.T) {
	small := testPartition(t, 0, 2, 8)
	c, err := New[int](small.SizeBytes()*8, 4, HashInt) // small budget → constant eviction
	if err != nil {
		t.Fatal(err)
	}
	const keys = 16
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % keys
				p, _, err := c.Get(context.Background(), k, func() (*Partition, error) {
					return testPartition(t, int64(k*1000), 2, 8), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if p.RIDs()[0] != int64(k*1000) {
					t.Errorf("key %d returned partition for rid base %d", k, p.RIDs()[0])
					return
				}
				if i%17 == 0 {
					c.Invalidate(k)
				}
				if i%31 == 0 {
					_ = c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 || st.Bytes > st.Budget {
		t.Fatalf("resident bytes %d outside [0, %d]", st.Bytes, st.Budget)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int](0, 1, HashInt); err == nil {
		t.Fatal("zero budget should error")
	}
	if _, err := New[int](-5, 1, HashInt); err == nil {
		t.Fatal("negative budget should error")
	}
	if _, err := New[int](1<<20, 1, nil); err == nil {
		t.Fatal("nil hash should error")
	}
	c, err := New[int](1<<20, 0, HashInt)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.shards) != DefaultShards {
		t.Fatalf("shards = %d, want %d", len(c.shards), DefaultShards)
	}
}

func TestCompositeKey(t *testing.T) {
	type key struct {
		dir string
		pid int
	}
	hash := func(k key) uint64 {
		h := uint64(14695981039346656037)
		for _, b := range []byte(k.dir) {
			h = (h ^ uint64(b)) * 1099511628211
		}
		return h ^ HashInt(k.pid)
	}
	c, err := New[key](1<<20, 4, hash)
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	for i := 0; i < 2; i++ {
		if _, _, err := c.Get(context.Background(), key{"a", 1}, func() (*Partition, error) {
			loads++
			return testPartition(t, 0, 1, 2), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Get(context.Background(), key{"b", 1}, func() (*Partition, error) {
		loads++
		return testPartition(t, 0, 1, 2), nil
	}); err != nil {
		t.Fatal(err)
	}
	if loads != 2 {
		t.Fatalf("loads = %d, want 2 (distinct dirs are distinct keys)", loads)
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c, err := New[int](1<<24, 8, HashInt)
	if err != nil {
		b.Fatal(err)
	}
	rids := make([]int64, 100)
	values := make([]float64, 100*64)
	for i := range rids {
		rids[i] = int64(i)
	}
	p, err := NewPartition(rids, values, 64)
	if err != nil {
		b.Fatal(err)
	}
	load := func() (*Partition, error) { return p, nil }
	if _, _, err := c.Get(context.Background(), 1, load); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, _ := c.Get(context.Background(), 1, load); !hit {
			b.Fatal("expected hit")
		}
	}
}

func ExampleCache() {
	c, _ := New[int](1<<20, 4, HashInt)
	load := func() (*Partition, error) {
		return NewPartition([]int64{10, 11}, make([]float64, 2*4), 4)
	}
	p, hit, _ := c.Get(context.Background(), 3, load)
	fmt.Println(p.Len(), hit)
	p, hit, _ = c.Get(context.Background(), 3, load) // resident: loader not invoked again
	fmt.Println(p.Len(), hit)
	// Output:
	// 2 false
	// 2 true
}
