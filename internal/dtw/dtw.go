// Package dtw implements Dynamic Time Warping support for the index: the
// Sakoe-Chiba banded DTW distance, the Keogh query envelope, and the
// LB_Keogh / LB_PAA lower bounds that make exact DTW k-nearest-neighbor
// search through an iSAX index possible (Keogh & Ratanamahatana, "Exact
// indexing of dynamic time warping", KAIS 2005). The TARDIS paper evaluates
// Euclidean distance only; DTW is the standard extension for the iSAX
// family and slots into the same lower-bound pruning machinery.
package dtw

import (
	"fmt"
	"math"

	"github.com/tardisdb/tardis/internal/ts"
)

// Distance computes the banded DTW distance between two equal-length series
// under a Sakoe-Chiba band of half-width r (r >= 0; r >= len-1 degenerates
// to unconstrained DTW). The local cost is the squared difference and the
// returned distance is the square root of the optimal path cost, so for
// r = 0 it equals the Euclidean distance.
func Distance(a, b ts.Series, r int) (float64, error) {
	n := len(a)
	if n != len(b) {
		return 0, fmt.Errorf("dtw: length mismatch %d vs %d", n, len(b))
	}
	if n == 0 {
		return 0, fmt.Errorf("dtw: empty series")
	}
	if r < 0 {
		return 0, fmt.Errorf("dtw: band radius must be non-negative, got %d", r)
	}
	if r > n-1 {
		r = n - 1
	}
	// Two-row dynamic program over the banded matrix.
	const inf = math.MaxFloat64
	prev := make([]float64, n)
	cur := make([]float64, n)
	for j := range prev {
		prev[j] = inf
	}
	for i := 0; i < n; i++ {
		lo, hi := i-r, i+r
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		for j := range cur {
			cur[j] = inf
		}
		for j := lo; j <= hi; j++ {
			d := a[i] - b[j]
			cost := d * d
			best := inf
			if i > 0 && prev[j] < best {
				best = prev[j] // insertion
			}
			if j > lo && cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			if i > 0 && j > 0 && prev[j-1] < best {
				best = prev[j-1] // match
			}
			if i == 0 && j == 0 {
				best = 0
			}
			if best == inf {
				continue // unreachable cell inside the band edge
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	total := prev[n-1]
	if total == inf {
		return 0, fmt.Errorf("dtw: no path within band %d", r)
	}
	return math.Sqrt(total), nil
}

// Envelope is the Keogh warping envelope of a query: U[i] and L[i] bound
// every value the query can align against position i under the band.
type Envelope struct {
	U, L ts.Series
	// R is the band half-width the envelope was built with.
	R int
}

// NewEnvelope computes the envelope of q for band half-width r using the
// straightforward O(n·r) sliding window (n and r are small here; the
// Lemire O(n) algorithm is unnecessary).
func NewEnvelope(q ts.Series, r int) (*Envelope, error) {
	n := len(q)
	if n == 0 {
		return nil, fmt.Errorf("dtw: empty query")
	}
	if r < 0 {
		return nil, fmt.Errorf("dtw: band radius must be non-negative, got %d", r)
	}
	if r > n-1 {
		r = n - 1
	}
	e := &Envelope{U: make(ts.Series, n), L: make(ts.Series, n), R: r}
	for i := 0; i < n; i++ {
		lo, hi := i-r, i+r
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		maxV, minV := q[lo], q[lo]
		for j := lo + 1; j <= hi; j++ {
			if q[j] > maxV {
				maxV = q[j]
			}
			if q[j] < minV {
				minV = q[j]
			}
		}
		e.U[i], e.L[i] = maxV, minV
	}
	return e, nil
}

// LBKeogh computes the LB_Keogh lower bound on DTW(q, c) where e is q's
// envelope: points of c above U or below L contribute their squared
// excursion. LB_Keogh(q,c) <= DTW(q,c) for any band-r alignment.
func (e *Envelope) LBKeogh(c ts.Series) (float64, error) {
	if len(c) != len(e.U) {
		return 0, fmt.Errorf("dtw: candidate length %d != envelope length %d", len(c), len(e.U))
	}
	var sum float64
	for i, v := range c {
		switch {
		case v > e.U[i]:
			d := v - e.U[i]
			sum += d * d
		case v < e.L[i]:
			d := e.L[i] - v
			sum += d * d
		}
	}
	return math.Sqrt(sum), nil
}

// LBKeoghEarlyAbandon is LBKeogh that abandons once the partial sum exceeds
// bound²; it returns (partial, false) on abandon.
func (e *Envelope) LBKeoghEarlyAbandon(c ts.Series, bound float64) (float64, bool) {
	bsq := bound * bound
	var sum float64
	for i, v := range c {
		switch {
		case v > e.U[i]:
			d := v - e.U[i]
			sum += d * d
		case v < e.L[i]:
			d := e.L[i] - v
			sum += d * d
		}
		if sum > bsq {
			return math.Sqrt(sum), false
		}
	}
	return math.Sqrt(sum), true
}

// PAAEnvelope is the segment-level envelope used to lower-bound DTW against
// SAX regions: the PAA (per-segment mean) of U and L. This is Keogh's
// LB_PAA construction ("Exact indexing of dynamic time warping", KAIS
// 2005): LB_PAA(q,c) computed from the envelope means and the candidate's
// PAA lower-bounds LB_Keogh(q,c), which lower-bounds DTW(q,c). A SAX region
// bounds the candidate's PAA coefficient, so minimizing the per-segment
// contribution over the region keeps the chain of inequalities intact.
type PAAEnvelope struct {
	UMean, LMean ts.Series // PAA of the envelope, one entry per segment
	SeriesLen    int
}

// PAA reduces the envelope to w segments by averaging U and L per frame
// (fractional frames handled exactly, matching ts.PAA).
func (e *Envelope) PAA(w int) (*PAAEnvelope, error) {
	u, err := ts.PAA(e.U, w)
	if err != nil {
		return nil, err
	}
	l, err := ts.PAA(e.L, w)
	if err != nil {
		return nil, err
	}
	return &PAAEnvelope{UMean: u, LMean: l, SeriesLen: len(e.U)}, nil
}

// MinDistRegions lower-bounds DTW(q, c) for any series c whose SAX word (at
// cardinality 2^bits) is `word`: per segment, the gap between the envelope
// means [LMean, UMean] and the region box covering the candidate's PAA
// coefficient, scaled by sqrt(n/w) — the region-relaxed LB_PAA.
func (pe *PAAEnvelope) MinDistRegions(word []int, bits int) (float64, error) {
	w := len(pe.UMean)
	if len(word) != w {
		return 0, fmt.Errorf("dtw: word length %d != envelope segments %d", len(word), w)
	}
	var sum float64
	for j, sym := range word {
		lo, hi := ts.SymbolBounds(sym, bits)
		switch {
		case lo > pe.UMean[j]:
			d := lo - pe.UMean[j]
			sum += d * d
		case hi < pe.LMean[j]:
			d := pe.LMean[j] - hi
			sum += d * d
		}
	}
	return math.Sqrt(float64(pe.SeriesLen)/float64(w)) * math.Sqrt(sum), nil
}

// MinDistPAA lower-bounds DTW(q, c) given the candidate's exact PAA — the
// classic LB_PAA, tighter than the region relaxation.
func (pe *PAAEnvelope) MinDistPAA(paa ts.Series) (float64, error) {
	w := len(pe.UMean)
	if len(paa) != w {
		return 0, fmt.Errorf("dtw: PAA length %d != envelope segments %d", len(paa), w)
	}
	var sum float64
	for j, v := range paa {
		switch {
		case v > pe.UMean[j]:
			d := v - pe.UMean[j]
			sum += d * d
		case v < pe.LMean[j]:
			d := pe.LMean[j] - v
			sum += d * d
		}
	}
	return math.Sqrt(float64(pe.SeriesLen)/float64(w)) * math.Sqrt(sum), nil
}
