package dtw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tardisdb/tardis/internal/ts"
)

func TestDistanceValidation(t *testing.T) {
	if _, err := Distance(ts.Series{1}, ts.Series{1, 2}, 1); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Distance(nil, nil, 1); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := Distance(ts.Series{1}, ts.Series{1}, -1); err == nil {
		t.Error("negative band should fail")
	}
}

func TestDistanceBandZeroIsEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make(ts.Series, 32)
	b := make(ts.Series, 32)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	d, err := Distance(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	ed, _ := ts.EuclideanDistance(a, b)
	if math.Abs(d-ed) > 1e-12 {
		t.Errorf("band-0 DTW %v != ED %v", d, ed)
	}
}

func TestDistanceKnownCase(t *testing.T) {
	// A shifted pattern: ED is large, DTW with a wide band is small.
	a := ts.Series{0, 0, 1, 2, 1, 0, 0, 0}
	b := ts.Series{0, 0, 0, 1, 2, 1, 0, 0}
	ed, _ := ts.EuclideanDistance(a, b)
	d, err := Distance(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d >= ed {
		t.Errorf("warped distance %v should beat ED %v for shifted patterns", d, ed)
	}
	if d != 0 {
		t.Errorf("one-step shift within band should align exactly, got %v", d)
	}
	// Identical series at any band.
	for _, r := range []int{0, 1, 5, 100} {
		if d, _ := Distance(a, a, r); d != 0 {
			t.Errorf("self distance at band %d = %v", r, d)
		}
	}
}

func TestDistanceMonotoneInBand(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make(ts.Series, 24)
	b := make(ts.Series, 24)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	prev := math.Inf(1)
	for r := 0; r < 24; r++ {
		d, err := Distance(a, b, r)
		if err != nil {
			t.Fatal(err)
		}
		if d > prev+1e-9 {
			t.Fatalf("widening the band increased DTW: r=%d %v > %v", r, d, prev)
		}
		prev = d
	}
}

func TestDistanceSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make(ts.Series, 20)
	b := make(ts.Series, 20)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	for _, r := range []int{0, 2, 5, 19} {
		ab, _ := Distance(a, b, r)
		ba, _ := Distance(b, a, r)
		if math.Abs(ab-ba) > 1e-9 {
			t.Errorf("band %d: DTW not symmetric: %v vs %v", r, ab, ba)
		}
	}
}

func TestEnvelopeBasics(t *testing.T) {
	q := ts.Series{0, 1, 2, 1, 0}
	e, err := NewEnvelope(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantU := ts.Series{1, 2, 2, 2, 1}
	wantL := ts.Series{0, 0, 1, 0, 0}
	for i := range q {
		if e.U[i] != wantU[i] || e.L[i] != wantL[i] {
			t.Errorf("envelope[%d] = (%v,%v), want (%v,%v)", i, e.L[i], e.U[i], wantL[i], wantU[i])
		}
	}
	if _, err := NewEnvelope(nil, 1); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := NewEnvelope(q, -1); err == nil {
		t.Error("negative band should fail")
	}
	// r=0 envelope is the query itself.
	e0, _ := NewEnvelope(q, 0)
	for i := range q {
		if e0.U[i] != q[i] || e0.L[i] != q[i] {
			t.Error("r=0 envelope should equal the query")
		}
	}
}

func TestLBKeoghValidation(t *testing.T) {
	e, _ := NewEnvelope(ts.Series{1, 2, 3}, 1)
	if _, err := e.LBKeogh(ts.Series{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

// The full lower-bound chain on random data:
// MinDistRegions <= MinDistPAA <= LB_Keogh <= DTW.
func TestLowerBoundChainProperty(t *testing.T) {
	const n, w, bits = 64, 8, 4
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := make(ts.Series, n)
		c := make(ts.Series, n)
		for i := 0; i < n; i++ {
			q[i] = rng.NormFloat64()
			c[i] = rng.NormFloat64()
		}
		q = q.ZNormalize()
		c = c.ZNormalize()
		r := rng.Intn(10)
		e, err := NewEnvelope(q, r)
		if err != nil {
			return false
		}
		d, err := Distance(q, c, r)
		if err != nil {
			return false
		}
		lbk, err := e.LBKeogh(c)
		if err != nil {
			return false
		}
		if lbk > d+1e-9 {
			t.Logf("seed %d r %d: LB_Keogh %v > DTW %v", seed, r, lbk, d)
			return false
		}
		pe, err := e.PAA(w)
		if err != nil {
			return false
		}
		cpaa := ts.MustPAA(c, w)
		lbp, err := pe.MinDistPAA(cpaa)
		if err != nil {
			return false
		}
		if lbp > lbk+1e-9 {
			t.Logf("seed %d r %d: LB_PAA %v > LB_Keogh %v", seed, r, lbp, lbk)
			return false
		}
		word := ts.SAXWord(cpaa, bits)
		lbr, err := pe.MinDistRegions(word, bits)
		if err != nil {
			return false
		}
		if lbr > lbp+1e-9 {
			t.Logf("seed %d r %d: region bound %v > LB_PAA %v", seed, r, lbr, lbp)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The chain also holds for non-divisible lengths (fractional PAA frames).
func TestLowerBoundChainFractionalFrames(t *testing.T) {
	const n, w, bits = 50, 8, 3
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := make(ts.Series, n)
		c := make(ts.Series, n)
		for i := 0; i < n; i++ {
			q[i] = rng.NormFloat64() * 2
			c[i] = rng.NormFloat64() * 2
		}
		r := rng.Intn(6)
		e, _ := NewEnvelope(q, r)
		d, err := Distance(q, c, r)
		if err != nil {
			return false
		}
		pe, err := e.PAA(w)
		if err != nil {
			return false
		}
		lbp, err := pe.MinDistPAA(ts.MustPAA(c, w))
		if err != nil {
			return false
		}
		return lbp <= d+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLBKeoghEarlyAbandon(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := make(ts.Series, 32)
	c := make(ts.Series, 32)
	for i := range q {
		q[i] = rng.NormFloat64()
		c[i] = rng.NormFloat64() * 5
	}
	e, _ := NewEnvelope(q, 2)
	full, _ := e.LBKeogh(c)
	got, ok := e.LBKeoghEarlyAbandon(c, full+1)
	if !ok || math.Abs(got-full) > 1e-12 {
		t.Errorf("no-abandon case: (%v,%v), want (%v,true)", got, ok, full)
	}
	if _, ok := e.LBKeoghEarlyAbandon(c, full/10); ok {
		t.Error("tight bound should abandon")
	}
}

func TestPAAEnvelopeValidation(t *testing.T) {
	e, _ := NewEnvelope(make(ts.Series, 8), 1)
	if _, err := e.PAA(0); err == nil {
		t.Error("w=0 should fail")
	}
	if _, err := e.PAA(16); err == nil {
		t.Error("w>n should fail")
	}
	pe, _ := e.PAA(4)
	if _, err := pe.MinDistRegions([]int{1}, 2); err == nil {
		t.Error("word length mismatch should fail")
	}
	if _, err := pe.MinDistPAA(ts.Series{1}); err == nil {
		t.Error("PAA length mismatch should fail")
	}
}
