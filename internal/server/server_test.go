package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"github.com/tardisdb/tardis/internal/cluster"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/ts"
)

const (
	testSeriesLen = 32
	testRecords   = 2000
)

func newTestServer(t *testing.T) (*httptest.Server, dataset.Generator) {
	t.Helper()
	g, err := dataset.New(dataset.RandomWalk, testSeriesLen)
	if err != nil {
		t.Fatal(err)
	}
	src, err := dataset.WriteStore(g, 21, testRecords, filepath.Join(t.TempDir(), "src"), 400, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.GMaxSize = 300
	cfg.LMaxSize = 30
	cfg.SamplePct = 0.4
	ix, err := core.Build(cl, src, filepath.Join(t.TempDir(), "dst"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(ix).Handler())
	t.Cleanup(srv.Close)
	return srv, g
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func storedQuery(g dataset.Generator, rid int64) ts.Series {
	return dataset.Record(g, 21, rid).Values.ZNormalize()
}

func TestHealthAndStats(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	var stats StatsResponse
	r2, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Records != testRecords || stats.SeriesLen != testSeriesLen || stats.Partitions < 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestKNNEndpointStrategies(t *testing.T) {
	srv, g := newTestServer(t)
	q := storedQuery(g, 7)
	for _, strat := range []string{"", "tna", "opa", "mpa", "exact", "auto"} {
		var out KNNResponse
		code := postJSON(t, srv.URL+"/query/knn", KNNRequest{Series: q, K: 5, Strategy: strat}, &out)
		if code != http.StatusOK {
			t.Fatalf("strategy %q: status %d", strat, code)
		}
		if len(out.Neighbors) != 5 {
			t.Fatalf("strategy %q: %d neighbors", strat, len(out.Neighbors))
		}
		if out.Neighbors[0].RID != 7 || out.Neighbors[0].Dist != 0 {
			t.Fatalf("strategy %q: self query wrong: %+v", strat, out.Neighbors[0])
		}
		if out.Strategy == "" {
			t.Errorf("strategy %q: response strategy empty", strat)
		}
	}
	// DTW strategy.
	var out KNNResponse
	code := postJSON(t, srv.URL+"/query/knn", KNNRequest{Series: q, K: 3, Strategy: "dtw", Band: 4}, &out)
	if code != http.StatusOK || len(out.Neighbors) != 3 || out.Neighbors[0].Dist != 0 {
		t.Fatalf("dtw: code %d out %+v", code, out)
	}
	// Bad strategy and bad k.
	if code := postJSON(t, srv.URL+"/query/knn", KNNRequest{Series: q, K: 5, Strategy: "bogus"}, nil); code != http.StatusBadRequest {
		t.Errorf("bogus strategy: %d", code)
	}
	if code := postJSON(t, srv.URL+"/query/knn", KNNRequest{Series: q, K: 0}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("k=0: %d", code)
	}
	// Malformed body.
	resp, _ := http.Post(srv.URL+"/query/knn", "application/json", bytes.NewReader([]byte("{bad")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestExactAndRangeEndpoints(t *testing.T) {
	srv, g := newTestServer(t)
	q := storedQuery(g, 42)
	var ex ExactResponse
	if code := postJSON(t, srv.URL+"/query/exact", ExactRequest{Series: q}, &ex); code != http.StatusOK {
		t.Fatalf("exact: %d", code)
	}
	found := false
	for _, rid := range ex.RIDs {
		if rid == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("exact missed rid 42: %+v", ex)
	}
	// Absent query returns empty list, not null.
	absent := dataset.Record(g, 999, 0).Values.ZNormalize()
	var ex2 ExactResponse
	if code := postJSON(t, srv.URL+"/query/exact", ExactRequest{Series: absent}, &ex2); code != http.StatusOK {
		t.Fatalf("absent exact: %d", code)
	}
	if ex2.RIDs == nil || len(ex2.RIDs) != 0 {
		t.Errorf("absent rids = %v", ex2.RIDs)
	}
	// Range.
	var rr KNNResponse
	if code := postJSON(t, srv.URL+"/query/range", RangeRequest{Series: q, Eps: 1.0}, &rr); code != http.StatusOK {
		t.Fatalf("range: %d", code)
	}
	if len(rr.Neighbors) == 0 || rr.Neighbors[0].RID != 42 {
		t.Fatalf("range result: %+v", rr.Neighbors)
	}
	if code := postJSON(t, srv.URL+"/query/range", RangeRequest{Series: q, Eps: -1}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("negative eps: %d", code)
	}
}

func TestIngestLifecycle(t *testing.T) {
	srv, g := newTestServer(t)
	// Insert two new records.
	newRec := func(rid int64) ts.Record {
		r := dataset.Record(g, 555, rid)
		r.RID = 1_000_000 + rid
		r.Values.ZNormalizeInPlace()
		return r
	}
	var ins map[string]int64
	code := postJSON(t, srv.URL+"/insert", InsertRequest{Records: []ts.Record{newRec(1), newRec(2)}}, &ins)
	if code != http.StatusOK || ins["delta_count"] != 2 {
		t.Fatalf("insert: %d %v", code, ins)
	}
	// The new record is queryable.
	var out KNNResponse
	q := newRec(1).Values
	if code := postJSON(t, srv.URL+"/query/knn", KNNRequest{Series: q, K: 1}, &out); code != http.StatusOK {
		t.Fatalf("post-insert query: %d", code)
	}
	if out.Neighbors[0].RID != 1_000_001 || out.Neighbors[0].Dist != 0 {
		t.Fatalf("inserted record not found: %+v", out.Neighbors[0])
	}
	// Delete it.
	var del map[string]int
	if code := postJSON(t, srv.URL+"/delete", DeleteRequest{RIDs: []int64{1_000_001}}, &del); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if del["tombstones"] != 1 {
		t.Errorf("tombstones = %d", del["tombstones"])
	}
	// Compact.
	var comp map[string]int
	if code := postJSON(t, srv.URL+"/compact", struct{}{}, &comp); code != http.StatusOK {
		t.Fatalf("compact: %d", code)
	}
	// The deleted record stays gone; the other insert persists.
	var ex ExactResponse
	postJSON(t, srv.URL+"/query/exact", ExactRequest{Series: q}, &ex)
	if len(ex.RIDs) != 0 {
		t.Errorf("deleted record visible after compact: %v", ex.RIDs)
	}
	postJSON(t, srv.URL+"/query/exact", ExactRequest{Series: newRec(2).Values}, &ex)
	if len(ex.RIDs) != 1 || ex.RIDs[0] != 1_000_002 {
		t.Errorf("surviving insert lost: %v", ex.RIDs)
	}
	// Validation.
	if code := postJSON(t, srv.URL+"/insert", InsertRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty insert: %d", code)
	}
	if code := postJSON(t, srv.URL+"/delete", DeleteRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty delete: %d", code)
	}
}

// Queries and mutations interleave safely under the server's lock.
func TestConcurrentQueriesAndIngest(t *testing.T) {
	srv, g := newTestServer(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 32)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := storedQuery(g, int64(w*10+i))
				var out KNNResponse
				if code := postJSON(t, srv.URL+"/query/knn", KNNRequest{Series: q, K: 3}, &out); code != 200 {
					errCh <- fmt.Errorf("query status %d", code)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			rec := dataset.Record(g, 777, int64(i))
			rec.RID = 2_000_000 + int64(i)
			rec.Values.ZNormalizeInPlace()
			if code := postJSON(t, srv.URL+"/insert", InsertRequest{Records: []ts.Record{rec}}, nil); code != 200 {
				errCh <- fmt.Errorf("insert status %d", code)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
