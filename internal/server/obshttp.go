package server

import (
	"net/http"
	"time"

	"github.com/tardisdb/tardis/internal/obs"
)

// HTTP telemetry. Routes are the fixed set of registered patterns and codes
// are collapsed to status classes, so both labels stay bounded.
var (
	mHTTPRequests = obs.NewCounterVec("tardis_server_requests_total",
		"HTTP requests served, by route and status class.", "route", "code")
	mHTTPDuration = obs.NewHistogramVec("tardis_server_request_duration_seconds",
		"HTTP request latency by route.", nil, "route")
)

// statusWriter captures the response code for the request counter.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// codeClass buckets a status code into a bounded label value.
func codeClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// instrument wraps one route with request counting and latency recording.
// The route name is a literal at every call site.
func instrument(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		code := sw.code
		if code == 0 {
			code = http.StatusOK
		}
		class := codeClass(code)
		mHTTPRequests.With(route, class).Inc()
		mHTTPDuration.With(route).Observe(time.Since(start).Seconds())
	})
}
