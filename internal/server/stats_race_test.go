package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/ts"
)

// TestStatsDuringCompact hammers /stats while compactions churn the index.
// Run under -race (the Makefile race target covers this package) it proves
// the stats handler takes one consistent snapshot of index state: a torn
// read — some fields from before a Compact's partition rewrite, some from
// after — would trip the race detector on the index internals or return an
// inconsistent record count.
func TestStatsDuringCompact(t *testing.T) {
	srv, g := newTestServer(t)

	// Seed the delta so each compaction has real work: it rewrites affected
	// partitions and rebuilds their local trees.
	var insert struct {
		Records []ts.Record `json:"records"`
	}
	for i := 0; i < 64; i++ {
		insert.Records = append(insert.Records, dataset.Record(g, 4242, int64(testRecords+i)))
	}
	if code := postJSON(t, srv.URL+"/insert", insert, nil); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}

	const (
		compactors = 2
		readers    = 4
		iterations = 25
	)
	var wg sync.WaitGroup
	errCh := make(chan error, compactors+readers)

	for c := 0; c < compactors; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				resp, err := http.Post(srv.URL+"/compact", "application/json", nil)
				if err != nil {
					errCh <- fmt.Errorf("compact: %w", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("compact: status %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations*4; i++ {
				resp, err := http.Get(srv.URL + "/stats")
				if err != nil {
					errCh <- fmt.Errorf("stats: %w", err)
					return
				}
				var st StatsResponse
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					errCh <- fmt.Errorf("stats decode: %w", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("stats: status %d", resp.StatusCode)
					return
				}
				// Invariants that hold before, during, and after compaction;
				// a torn snapshot can violate them (e.g. records counted
				// after the delta merged but delta_count from before).
				if st.Records < testRecords {
					errCh <- fmt.Errorf("stats: records %d < base %d", st.Records, testRecords)
					return
				}
				if st.Records+st.DeltaCount < testRecords+64 {
					errCh <- fmt.Errorf("stats: records %d + delta %d < %d",
						st.Records, st.DeltaCount, testRecords+64)
					return
				}
				if st.SeriesLen != testSeriesLen || st.Partitions < 1 {
					errCh <- fmt.Errorf("stats: implausible snapshot %+v", st)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
