// Package server exposes a loaded TARDIS index as a JSON-over-HTTP service
// (cmd/tardis-serve): similarity queries, incremental ingest, and index
// statistics. Queries run concurrently under a read lock; mutations
// (insert/delete/compact) serialize under a write lock, providing the
// synchronization the core Index leaves to its caller.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/qprof"
	"github.com/tardisdb/tardis/internal/ts"
)

// Server wraps an index with HTTP handlers.
type Server struct {
	mu   sync.RWMutex
	ix   *core.Index // guarded by mu
	pool *clusterrpc.Pool
	rec  *qprof.Recorder
	// coordVersion, when set, reads the coordinator ensemble's committed
	// PartitionMap version (a func keeps the server free of the coordinator
	// client's wiring).
	coordVersion func() (uint64, error)

	// Cumulative intra-query parallelism totals across every served query,
	// reported in /stats.
	qparQueries atomic.Int64
	qparWorkers atomic.Int64 // high-water pool width
	qparStolen  atomic.Int64
	qparBound   atomic.Int64
}

// New creates a Server around a loaded index. Queries feed the process-wide
// flight recorder (qprof.Default), whose state the handler serves at
// /debug/queries; AttachRecorder swaps in a private one for tests.
func New(ix *core.Index) *Server { return &Server{ix: ix, rec: qprof.Default()} }

// AttachRecorder replaces the server's query flight recorder. Call before
// Handler.
func (s *Server) AttachRecorder(r *qprof.Recorder) { s.rec = r }

// AttachCoordinator wires a reader for the coordinator ensemble's committed
// PartitionMap version into /stats, so operators can spot a server routing on
// a stale placement. Call before Handler.
func (s *Server) AttachCoordinator(version func() (uint64, error)) { s.coordVersion = version }

// AttachPool wires a tardis-worker pool into the server, enabling the "dist"
// and "dist-exact" kNN strategies (partition scans fanned out over RPC to
// workers sharing the index directory) and per-worker health in /stats. Call
// before Handler; the server does not close the pool. Distributed strategies
// answer from the persisted index only — in-memory delta records are not
// consulted.
func (s *Server) AttachPool(p *clusterrpc.Pool) { s.pool = p }

// Handler returns the HTTP routing for the service. Every API route is
// wrapped with request/latency metrics; the telemetry surface (/metrics in
// Prometheus text format, /debug/traces as JSON) is mounted on the same mux
// so a bare tardis-serve is scrapable without -debug-addr.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.Handle(pattern, instrument(route, h))
	}
	handle("GET /healthz", "healthz", s.handleHealth)
	handle("GET /stats", "stats", s.handleStats)
	handle("POST /query/knn", "query_knn", s.handleKNN)
	handle("POST /query/exact", "query_exact", s.handleExact)
	handle("POST /query/range", "query_range", s.handleRange)
	handle("POST /insert", "insert", s.handleInsert)
	handle("POST /delete", "delete", s.handleDelete)
	handle("POST /compact", "compact", s.handleCompact)
	mux.Handle("GET /metrics", obs.MetricsHandler())
	mux.Handle("GET /debug/traces", obs.TracesHandler())
	mux.Handle("GET /debug/queries", s.rec.Handler())
	return mux
}

// recordQPar folds one query's work-stealing pool summary into the
// cumulative /stats totals.
func (s *Server) recordQPar(st core.QueryStats) {
	if st.QPar.Workers == 0 {
		return
	}
	s.qparQueries.Add(1)
	s.qparStolen.Add(int64(st.QPar.TasksStolen))
	s.qparBound.Add(int64(st.QPar.BoundUpdates))
	for {
		cur := s.qparWorkers.Load()
		if int64(st.QPar.Workers) <= cur || s.qparWorkers.CompareAndSwap(cur, int64(st.QPar.Workers)) {
			return
		}
	}
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StatsResponse summarizes the served index.
type StatsResponse struct {
	SeriesLen  int   `json:"series_len"`
	Records    int64 `json:"records"`
	Partitions int   `json:"partitions"`
	DeltaCount int64 `json:"delta_count"`
	Tombstones int   `json:"tombstones"`
	// Partition-cache gauges (zero when caching is disabled).
	CacheHits        int64 `json:"cache_hits"`
	CacheMisses      int64 `json:"cache_misses"`
	CacheEvictions   int64 `json:"cache_evictions"`
	CacheBytes       int64 `json:"cache_bytes"`
	CacheEntries     int64 `json:"cache_entries"`
	CacheBudgetBytes int64 `json:"cache_budget_bytes"`
	// StageTasksSkipped sums TasksSkipped over every recorded cluster stage:
	// non-zero means some stage aborted early and drained its queue, so the
	// served index may have been produced by a degraded build.
	StageTasksSkipped int `json:"stage_tasks_skipped"`
	// Workers reports per-worker circuit-breaker state when a pool is
	// attached (tardis-serve -rpc); absent otherwise.
	Workers []clusterrpc.WorkerHealth `json:"workers,omitempty"`
	// Replication reports per-partition replica health when the served store
	// carries a PartitionMap; absent otherwise.
	Replication *ReplicationStatus `json:"replication,omitempty"`
	// QPar reports cumulative intra-query parallelism totals; absent until a
	// query has run with a parallel pool.
	QPar *QParTotals `json:"qpar,omitempty"`
}

// QParTotals is the cumulative work-stealing pool activity across every
// query served by this process.
type QParTotals struct {
	ParallelQueries int64 `json:"parallel_queries"`
	MaxWorkers      int64 `json:"max_workers"`
	TasksStolen     int64 `json:"tasks_stolen"`
	BoundUpdates    int64 `json:"bound_updates"`
}

// ReplicaHealth is one partition's replica placement and how many of its
// replicas are currently reachable (in the pool with a closed breaker).
type ReplicaHealth struct {
	PID      int      `json:"pid"`
	Replicas []string `json:"replicas"`
	Live     int      `json:"live"`
}

// ReplicationStatus summarizes the served store's replica placement.
type ReplicationStatus struct {
	MapVersion  uint64 `json:"map_version"`
	Replication int    `json:"replication"`
	// CoordVersion is the coordinator ensemble's committed map version, when
	// one is attached: a mismatch with MapVersion means this server routes on
	// a stale placement until it reloads.
	CoordVersion uint64 `json:"coord_version,omitempty"`
	CoordErr     string `json:"coord_err,omitempty"`
	// UnderReplicated counts partitions with fewer live replicas than the
	// replication factor; Down counts partitions with no live replica at all
	// (the only state in which exact queries can fail).
	UnderReplicated int             `json:"under_replicated"`
	Down            int             `json:"down"`
	Partitions      []ReplicaHealth `json:"partitions"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	// Snapshot every field under ONE read of the index state, then release
	// the lock before serializing. Reading fields lazily while writing the
	// response would let a concurrent Compact (write lock) slip between two
	// reads and produce a torn response — record counts from before the
	// rewrite next to cache stats from after it.
	s.mu.RLock()
	total, err := s.ix.Store.TotalRecords()
	if err != nil {
		s.mu.RUnlock()
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	cs := s.ix.CacheStats()
	skipped := 0
	for _, sm := range s.ix.Cluster().Stages() {
		skipped += sm.TasksSkipped
	}
	resp := StatsResponse{
		SeriesLen:         s.ix.SeriesLen(),
		Records:           total,
		Partitions:        s.ix.NumPartitions(),
		DeltaCount:        s.ix.DeltaCount(),
		Tombstones:        s.ix.TombstoneCount(),
		CacheHits:         cs.Hits,
		CacheMisses:       cs.Misses,
		CacheEvictions:    cs.Evictions,
		CacheBytes:        cs.Bytes,
		CacheEntries:      cs.Entries,
		CacheBudgetBytes:  cs.Budget,
		StageTasksSkipped: skipped,
	}
	storeDir := s.ix.Store.Dir()
	s.mu.RUnlock()
	// Pool health has its own internal locking and is not index state.
	if s.pool != nil {
		resp.Workers = s.pool.Health()
		resp.Replication = s.replicationStatus(storeDir, resp.Workers)
	}
	if n := s.qparQueries.Load(); n > 0 {
		resp.QPar = &QParTotals{
			ParallelQueries: n,
			MaxWorkers:      s.qparWorkers.Load(),
			TasksStolen:     s.qparStolen.Load(),
			BoundUpdates:    s.qparBound.Load(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// replicationStatus derives per-partition replica health from the store's
// PartitionMap and the pool's breaker view. Returns nil for an unreplicated
// store.
func (s *Server) replicationStatus(storeDir string, workers []clusterrpc.WorkerHealth) *ReplicationStatus {
	pm, err := clusterrpc.LoadPartitionMap(storeDir)
	if err != nil || pm == nil {
		return nil
	}
	alive := map[string]bool{}
	for _, h := range workers {
		alive[h.Addr] = !h.BreakerOpen
	}
	rs := &ReplicationStatus{MapVersion: pm.Version, Replication: pm.Replication} //tardislint:ignore racecheck cross-instance pairing: stats reads a private map loaded from disk per request
	for _, e := range pm.Entries {
		live := 0
		for _, a := range e.Replicas { //tardislint:ignore racecheck cross-instance pairing: stats reads a private map loaded from disk per request
			if alive[a] {
				live++
			}
		}
		if live < pm.Replication {
			rs.UnderReplicated++
		}
		if live == 0 {
			rs.Down++
		}
		rs.Partitions = append(rs.Partitions, ReplicaHealth{PID: e.PID, Replicas: e.Replicas, Live: live}) //tardislint:ignore racecheck cross-instance pairing: stats reads a private map loaded from disk per request
	}
	if s.coordVersion != nil {
		v, err := s.coordVersion()
		if err != nil {
			rs.CoordErr = err.Error()
		} else {
			rs.CoordVersion = v
		}
	}
	return rs
}

// KNNRequest asks for the k nearest neighbors of a series.
type KNNRequest struct {
	Series   ts.Series `json:"series"`
	K        int       `json:"k"`
	Strategy string    `json:"strategy,omitempty"` // tna|opa|mpa|exact|dtw|auto|dist|dist-exact (default mpa)
	Band     int       `json:"band,omitempty"`     // dtw only
}

// KNNResponse carries the neighbors and the query profile. Degraded is only
// ever true for approximate strategies: it reports that some partitions were
// skipped after worker or storage failures and the answer may be partial.
// Exact strategies fail loudly instead of degrading.
type KNNResponse struct {
	Neighbors         []knn.Neighbor `json:"neighbors"`
	Strategy          string         `json:"strategy"`
	Partitions        int            `json:"partitions_loaded"`
	CacheHits         int            `json:"cache_hits"`
	CacheMisses       int            `json:"cache_misses"`
	Candidates        int            `json:"candidates"`
	Degraded          bool           `json:"degraded,omitempty"`
	PartitionsSkipped int            `json:"partitions_skipped,omitempty"`
	DurationMS        float64        `json:"duration_ms"`
	// Intra-query parallelism profile; zero when the query ran serially.
	QParWorkers  int `json:"qpar_workers,omitempty"`
	TasksStolen  int `json:"tasks_stolen,omitempty"`
	BoundUpdates int `json:"bound_updates,omitempty"`
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req KNNRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	name := req.Strategy
	if name == "" {
		name = "mpa"
	}
	// The flight recorder's sampling decision rides the request context into
	// the query; Observe must see every query, profiled or not.
	p := s.rec.Start(name)
	ctx := qprof.NewContext(r.Context(), p)
	var (
		res []knn.Neighbor
		st  core.QueryStats
		err error
	)
	switch name {
	case "tna":
		res, st, err = s.ix.KNNTargetNodeCtx(ctx, req.Series, req.K)
	case "opa":
		res, st, err = s.ix.KNNOnePartitionCtx(ctx, req.Series, req.K)
	case "mpa":
		res, st, err = s.ix.KNNMultiPartitionCtx(ctx, req.Series, req.K)
	case "exact":
		res, st, err = s.ix.KNNExactCtx(ctx, req.Series, req.K)
	case "dtw":
		res, st, err = s.ix.KNNDTWCtx(ctx, req.Series, req.K, req.Band)
	case "auto":
		var chosen core.Strategy
		res, chosen, st, err = s.ix.KNNAutoCtx(ctx, req.Series, req.K)
		name = chosen.String()
	case "dist", "dist-exact":
		if s.pool == nil {
			p.Release()
			writeErr(w, http.StatusBadRequest, errors.New("no worker pool attached (start tardis-serve with -rpc)"))
			return
		}
		if name == "dist" {
			res, st, err = clusterrpc.DistKNN(ctx, s.pool, s.ix.Store.Dir(), s.ix.Config(), req.Series, req.K)
		} else {
			res, st, err = clusterrpc.DistKNNExact(ctx, s.pool, s.ix.Store.Dir(), s.ix.Config(), req.Series, req.K)
		}
	default:
		p.Release()
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown strategy %q", req.Strategy))
		return
	}
	s.rec.Observe(p, name, st.Duration, err)
	s.recordQPar(st)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, KNNResponse{
		Neighbors: res, Strategy: name,
		Partitions: st.PartitionsLoaded, Candidates: st.Candidates,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses,
		Degraded: st.Degraded, PartitionsSkipped: st.PartitionsSkipped,
		DurationMS:  float64(st.Duration) / float64(time.Millisecond),
		QParWorkers: st.QPar.Workers, TasksStolen: st.QPar.TasksStolen,
		BoundUpdates: st.QPar.BoundUpdates,
	})
}

// ExactRequest asks which stored records equal the series exactly.
type ExactRequest struct {
	Series ts.Series `json:"series"`
	Bloom  *bool     `json:"bloom,omitempty"` // default true
}

// ExactResponse lists matching record ids.
type ExactResponse struct {
	RIDs          []int64 `json:"rids"`
	BloomRejected bool    `json:"bloom_rejected"`
	DurationMS    float64 `json:"duration_ms"`
}

func (s *Server) handleExact(w http.ResponseWriter, r *http.Request) {
	var req ExactRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	useBloom := req.Bloom == nil || *req.Bloom
	s.mu.RLock()
	p := s.rec.Start("exact-match")
	rids, st, err := s.ix.ExactMatchCtx(qprof.NewContext(r.Context(), p), req.Series, useBloom)
	s.rec.Observe(p, "exact-match", st.Duration, err)
	s.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	if rids == nil {
		rids = []int64{}
	}
	writeJSON(w, http.StatusOK, ExactResponse{
		RIDs: rids, BloomRejected: st.BloomRejected,
		DurationMS: float64(st.Duration) / float64(time.Millisecond),
	})
}

// RangeRequest asks for all records within eps of the series.
type RangeRequest struct {
	Series ts.Series `json:"series"`
	Eps    float64   `json:"eps"`
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	var req RangeRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	p := s.rec.Start("range")
	res, st, err := s.ix.RangeQueryCtx(qprof.NewContext(r.Context(), p), req.Series, req.Eps)
	s.rec.Observe(p, "range", st.Duration, err)
	s.recordQPar(st)
	s.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	if res == nil {
		res = []knn.Neighbor{}
	}
	writeJSON(w, http.StatusOK, KNNResponse{
		Neighbors: res, Strategy: "range",
		Partitions: st.PartitionsLoaded, Candidates: st.Candidates,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses,
		Degraded: st.Degraded, PartitionsSkipped: st.PartitionsSkipped,
		DurationMS:  float64(st.Duration) / float64(time.Millisecond),
		QParWorkers: st.QPar.Workers, TasksStolen: st.QPar.TasksStolen,
		BoundUpdates: st.QPar.BoundUpdates,
	})
}

// InsertRequest carries new records for the delta.
type InsertRequest struct {
	Records []ts.Record `json:"records"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Records) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("no records"))
		return
	}
	s.mu.Lock()
	err := s.ix.InsertBatch(req.Records)
	delta := s.ix.DeltaCount()
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"delta_count": delta})
}

// DeleteRequest carries record ids to tombstone.
type DeleteRequest struct {
	RIDs []int64 `json:"rids"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(req.RIDs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("no rids"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rid := range req.RIDs {
		if err := s.ix.Delete(rid); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{"tombstones": s.ix.TombstoneCount()})
}

func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n, err := s.ix.Compact()
	var saveErr error
	if err == nil {
		saveErr = s.ix.Save()
	}
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if saveErr != nil {
		writeErr(w, http.StatusInternalServerError, saveErr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"partitions_rewritten": n})
}
