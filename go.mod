module github.com/tardisdb/tardis

go 1.22
