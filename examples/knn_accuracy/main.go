// kNN accuracy: the paper's headline result (Figs. 15-16). Builds TARDIS and
// the DPiSAX baseline over the same SIFT-like dataset and compares the
// recall and error ratio of the baseline against TARDIS's three query
// strategies — Target-Node, One-Partition, and Multi-Partitions access.
//
//	go run ./examples/knn_accuracy
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"github.com/tardisdb/tardis"
)

func main() {
	log.SetFlags(0)
	work, err := os.MkdirTemp("", "tardis-knn")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	cl, err := tardis.NewCluster(tardis.ClusterConfig{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := tardis.NewGenerator(tardis.Texmex, tardis.DefaultSeriesLen(tardis.Texmex))
	if err != nil {
		log.Fatal(err)
	}
	const n = 20_000
	src, err := tardis.GenerateStore(gen, 3, n, filepath.Join(work, "data"), 2_000, true)
	if err != nil {
		log.Fatal(err)
	}

	tcfg := tardis.DefaultConfig()
	tcfg.GMaxSize = 1_000
	tix, err := tardis.Build(cl, src, filepath.Join(work, "tardis"), tcfg)
	if err != nil {
		log.Fatal(err)
	}
	bcfg := tardis.DefaultBaselineConfig()
	bcfg.GMaxSize = 1_000
	bix, err := tardis.BuildBaseline(cl, src, filepath.Join(work, "baseline"), bcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built TARDIS (%d partitions) and DPiSAX baseline (%d partitions) over %d SIFT-like vectors\n",
		tix.NumPartitions(), bix.NumPartitions(), n)

	const (
		queries = 10
		k       = 100
	)
	type result struct {
		recall, errRatio float64
		latency          time.Duration
	}
	agg := map[string]*result{}
	names := []string{"Baseline (DPiSAX)", "Target-Node", "One-Partition", "Multi-Partitions"}
	for _, s := range names {
		agg[s] = &result{}
	}
	for qi := 0; qi < queries; qi++ {
		// Fresh descriptors drawn from the same distribution, not stored.
		q := tardis.ZNormalize(tardis.GenerateRecord(gen, 555, int64(qi)).Values)
		truth, err := tardis.GroundTruthKNN(cl, tix.Store, q, k)
		if err != nil {
			log.Fatal(err)
		}
		add := func(name string, res []tardis.Neighbor, d time.Duration) {
			agg[name].recall += tardis.Recall(truth, res)
			agg[name].errRatio += tardis.ErrorRatio(truth, res)
			agg[name].latency += d
		}
		if res, st, err := bix.KNNApprox(q, k); err == nil {
			add("Baseline (DPiSAX)", res, st.Duration)
		} else {
			log.Fatal(err)
		}
		if res, st, err := tix.KNNTargetNode(q, k); err == nil {
			add("Target-Node", res, st.Duration)
		} else {
			log.Fatal(err)
		}
		if res, st, err := tix.KNNOnePartition(q, k); err == nil {
			add("One-Partition", res, st.Duration)
		} else {
			log.Fatal(err)
		}
		if res, st, err := tix.KNNMultiPartition(q, k); err == nil {
			add("Multi-Partitions", res, st.Duration)
		} else {
			log.Fatal(err)
		}
	}

	fmt.Printf("\n%-20s %8s %12s %12s\n", "strategy", "recall", "error-ratio", "avg latency")
	for _, name := range names {
		r := agg[name]
		fmt.Printf("%-20s %7.1f%% %12.3f %12s\n", name,
			r.recall/queries*100, r.errRatio/queries, (r.latency / queries).Round(time.Microsecond))
	}
	fmt.Println("\nexpected shape (paper Fig. 15): recall Baseline < Target-Node < One-Partition < Multi-Partitions,")
	fmt.Println("error ratio decreasing in the same order, Multi-Partitions latency comparable to the baseline.")
}
