// Quickstart: generate a RandomWalk dataset, build a TARDIS index, and run a
// kNN-approximate query — the minimal end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/tardisdb/tardis"
)

func main() {
	log.SetFlags(0)
	work, err := os.MkdirTemp("", "tardis-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// 1. The execution substrate: a Spark-like cluster of 8 workers.
	cl, err := tardis.NewCluster(tardis.ClusterConfig{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A dataset: 20k random-walk series of length 128, z-normalized and
	// written as HDFS-like blocks of 2k records.
	gen, err := tardis.NewGenerator(tardis.RandomWalk, 128)
	if err != nil {
		log.Fatal(err)
	}
	src, err := tardis.GenerateStore(gen, 1, 20_000, filepath.Join(work, "data"), 2_000, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated 20k series")

	// 3. Build the index: sampled global sigTree, clustered partitions,
	// local sigTrees and Bloom filters.
	cfg := tardis.DefaultConfig()
	cfg.GMaxSize = 1_000 // partition capacity, scaled for the small dataset
	ix, err := tardis.Build(cl, src, filepath.Join(work, "index"), cfg)
	if err != nil {
		log.Fatal(err)
	}
	bs := ix.BuildStats()
	fmt.Printf("built index: %d partitions in %s (global %s, local %s)\n",
		bs.Partitions, bs.Total.Round(1e6), bs.GlobalTotal.Round(1e6), bs.LocalTotal.Round(1e6))

	// 4. Query: 10 approximate nearest neighbors of a series similar to a
	// stored one (the Multi-Partitions strategy is the most accurate).
	query := tardis.ZNormalize(tardis.GenerateRecord(gen, 1, 4242).Values)
	neighbors, qs, err := ix.KNNMultiPartition(query, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kNN query touched %d partitions, %d candidates, in %s:\n",
		qs.PartitionsLoaded, qs.Candidates, qs.Duration.Round(1e3))
	for i, n := range neighbors {
		fmt.Printf("  #%-2d rid=%-6d dist=%.4f\n", i+1, n.RID, n.Dist)
	}

	// 5. Check against exact ground truth.
	truth, err := tardis.GroundTruthKNN(cl, ix.Store, query, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recall vs exact scan: %.0f%%, error ratio %.3f\n",
		tardis.Recall(truth, neighbors)*100, tardis.ErrorRatio(truth, neighbors))
}
