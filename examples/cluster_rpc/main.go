// Distributed build over net/rpc: three worker services on loopback TCP
// ports (in-process here; cmd/tardis-worker runs the same service as a
// separate process), a coordinator driving the four TARDIS build stages
// across them, and queries against the finalized index.
//
//	go run ./examples/cluster_rpc
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"github.com/tardisdb/tardis"
)

func main() {
	log.SetFlags(0)
	work, err := os.MkdirTemp("", "tardis-rpc")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// Dataset shared by all workers (the filesystem plays HDFS).
	gen, err := tardis.NewGenerator(tardis.DNA, tardis.DefaultSeriesLen(tardis.DNA))
	if err != nil {
		log.Fatal(err)
	}
	srcDir := filepath.Join(work, "data")
	if _, err := tardis.GenerateStore(gen, 5, 15_000, srcDir, 1_500, true); err != nil {
		log.Fatal(err)
	}

	// Start three workers on loopback ports.
	var addrs []string
	for i := 0; i < 3; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		addrs = append(addrs, ln.Addr().String())
		id := fmt.Sprintf("worker-%d", i+1)
		go tardis.ServeWorker(ln, id)
	}
	pool, err := tardis.DialWorkers(addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	ctx := context.Background()
	statuses, err := pool.Ping(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range statuses {
		fmt.Printf("connected to %s (%s, pid %d)\n", s.Reply.ID, s.Reply.Hostname, s.Reply.PID)
	}

	// Distributed build: sampling and shuffling run on the workers, the
	// global index is built on this coordinator and broadcast back.
	cfg := tardis.DefaultConfig()
	cfg.GMaxSize = 1_000
	dstDir := filepath.Join(work, "index")
	stats, err := tardis.BuildDistributed(ctx, pool, srcDir, dstDir, filepath.Join(work, "spill"), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed build: %d records -> %d partitions in %s\n",
		stats.Records, stats.Partitions, stats.Total.Round(1e6))
	fmt.Printf("  sample+convert %s | shuffle %s | local build %s\n",
		stats.SampleConvert.Round(1e6), stats.Shuffle.Round(1e6), stats.LocalBuild.Round(1e6))

	// Load the finalized index and query it like any local one.
	cl, err := tardis.NewCluster(tardis.ClusterConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	ix, err := tardis.Load(cl, dstDir)
	if err != nil {
		log.Fatal(err)
	}
	q := tardis.ZNormalize(tardis.GenerateRecord(gen, 5, 777).Values)
	res, qs, err := ix.KNNMultiPartition(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query over the distributed index (%d partitions loaded):\n", qs.PartitionsLoaded)
	for i, n := range res {
		fmt.Printf("  #%d rid=%d dist=%.4f\n", i+1, n.RID, n.Dist)
	}
	if len(res) > 0 && res[0].RID == 777 && res[0].Dist == 0 {
		fmt.Println("stored series correctly returned as its own nearest neighbor")
	}
}
