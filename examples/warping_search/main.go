// Warping search: the DTW extension. Heartbeat-like patterns that are
// time-shifted copies of each other look far apart under Euclidean distance
// but identical under banded DTW — this example indexes a mixed population
// and shows KNNDTW retrieving the shifted family that Euclidean kNN misses.
//
//	go run ./examples/warping_search
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"github.com/tardisdb/tardis"
)

const (
	seriesLen = 96
	family    = 40 // shifted copies of the target pattern
	noise     = 10_000
)

// pulse produces a heartbeat-like pattern with the spike at the given phase,
// plus small noise.
func pulse(rng *rand.Rand, phase int) tardis.Series {
	s := make(tardis.Series, seriesLen)
	for i := range s {
		d := float64(i - phase)
		s[i] = 3*math.Exp(-d*d/8) - 1.2*math.Exp(-(d-6)*(d-6)/18) + rng.NormFloat64()*0.05
	}
	return s
}

func main() {
	log.SetFlags(0)
	work, err := os.MkdirTemp("", "tardis-warp")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// Build a store: `noise` random walks plus `family` shifted pulses with
	// record ids starting at 1_000_000.
	st, err := tardis.CreateStore(filepath.Join(work, "data"), seriesLen)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := tardis.NewGenerator(tardis.RandomWalk, seriesLen)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	perBlock := int64(2000)
	var block []tardis.Record
	pid := 0
	flush := func() {
		if len(block) == 0 {
			return
		}
		if err := st.WritePartition(pid, block); err != nil {
			log.Fatal(err)
		}
		pid++
		block = block[:0]
	}
	for rid := int64(0); rid < noise; rid++ {
		rec := tardis.GenerateRecord(gen, 9, rid)
		rec.Values = tardis.ZNormalize(rec.Values)
		block = append(block, rec)
		if int64(len(block)) == perBlock {
			flush()
		}
	}
	for i := 0; i < family; i++ {
		phase := 20 + rng.Intn(50) // spike wanders across half the series
		rec := tardis.Record{RID: 1_000_000 + int64(i), Values: tardis.ZNormalize(pulse(rng, phase))}
		block = append(block, rec)
		if int64(len(block)) == perBlock {
			flush()
		}
	}
	flush()
	if err := st.Sync(); err != nil {
		log.Fatal(err)
	}

	cl, err := tardis.NewCluster(tardis.ClusterConfig{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	cfg := tardis.DefaultConfig()
	cfg.GMaxSize = 1_000
	ix, err := tardis.Build(cl, st, filepath.Join(work, "idx"), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d random walks + %d shifted pulses\n", noise, family)

	// Query: a pulse at a phase nobody stored exactly.
	q := tardis.ZNormalize(pulse(rng, 45))
	const k = 10
	countFamily := func(res []tardis.Neighbor) int {
		n := 0
		for _, r := range res {
			if r.RID >= 1_000_000 {
				n++
			}
		}
		return n
	}

	ed, _, err := ix.KNNExact(q, k)
	if err != nil {
		log.Fatal(err)
	}
	dtwRes, stats, err := ix.KNNDTW(q, k, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Euclidean exact kNN:  %d/%d results from the pulse family (nearest dist %.2f)\n",
		countFamily(ed), k, ed[0].Dist)
	fmt.Printf("DTW (band 12) kNN:    %d/%d results from the pulse family (nearest dist %.2f)\n",
		countFamily(dtwRes), k, dtwRes[0].Dist)
	fmt.Printf("DTW query pruned %d leaves, loaded %d of %d partitions, ran %d candidates\n",
		stats.PrunedLeaves, stats.PartitionsLoaded, ix.NumPartitions(), stats.Candidates)
	if countFamily(dtwRes) <= countFamily(ed) {
		fmt.Println("note: expected DTW to retrieve more of the shifted family than ED")
	}
}
