// Streaming ingest: the incremental-maintenance extension beyond the paper's
// batch-only design. A monitoring system keeps indexing new sensor traces
// (inserts land in an in-memory delta, immediately queryable), retires stale
// ones (tombstones), and periodically compacts the delta into the clustered
// partitions.
//
//	go run ./examples/streaming_ingest
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/tardisdb/tardis"
)

func main() {
	log.SetFlags(0)
	work, err := os.MkdirTemp("", "tardis-ingest")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	cl, err := tardis.NewCluster(tardis.ClusterConfig{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := tardis.NewGenerator(tardis.RandomWalk, 96)
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap: index the first day of data in batch.
	const bootstrap = 10_000
	src, err := tardis.GenerateStore(gen, 1, bootstrap, filepath.Join(work, "day0"), 1_000, true)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tardis.DefaultConfig()
	cfg.GMaxSize = 800
	ix, err := tardis.Build(cl, src, filepath.Join(work, "index"), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap: %d traces in %d partitions\n", bootstrap, ix.NumPartitions())

	// Streaming phase: three mini-batches of new traces arrive.
	nextRID := int64(bootstrap)
	for batch := 1; batch <= 3; batch++ {
		var recs []tardis.Record
		for i := 0; i < 500; i++ {
			rec := tardis.GenerateRecord(gen, int64(100+batch), int64(i))
			rec.RID = nextRID
			nextRID++
			rec.Values = tardis.ZNormalize(rec.Values)
			recs = append(recs, rec)
		}
		if err := ix.InsertBatch(recs); err != nil {
			log.Fatal(err)
		}
		// The newest trace is findable immediately, pre-compaction.
		last := recs[len(recs)-1]
		got, _, err := ix.ExactMatch(last.Values, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: inserted 500, delta now %d; newest trace findable: %v\n",
			batch, ix.DeltaCount(), contains(got, last.RID))
	}

	// Retire some of the oldest traces.
	for rid := int64(0); rid < 200; rid++ {
		if err := ix.Delete(rid); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("retired 200 old traces (tombstones: %d)\n", ix.TombstoneCount())
	gone := tardis.ZNormalize(tardis.GenerateRecord(gen, 1, 7).Values)
	if got, _, _ := ix.ExactMatch(gone, true); contains(got, 7) {
		log.Fatal("retired trace still visible")
	}
	fmt.Println("retired traces invisible to queries before compaction")

	// Compact: fold the delta into the partitions, reclaim deleted bytes.
	before, _ := ix.Store.TotalRecords()
	nParts, err := ix.Compact()
	if err != nil {
		log.Fatal(err)
	}
	after, _ := ix.Store.TotalRecords()
	fmt.Printf("compaction rewrote %d partitions: %d -> %d on-disk records (delta %d, tombstones %d)\n",
		nParts, before, after, ix.DeltaCount(), ix.TombstoneCount())

	// Everything consistent afterwards: kNN over a fresh trace.
	q := tardis.ZNormalize(tardis.GenerateRecord(gen, 101, 499).Values) // batch-1 record
	res, _, err := ix.KNNMultiPartition(q, 3)
	if err != nil {
		log.Fatal(err)
	}
	if len(res) > 0 && res[0].Dist == 0 {
		fmt.Printf("post-compaction query found the streamed trace (rid %d) at distance 0\n", res[0].RID)
	}
	if err := ix.Save(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("index saved with the merged state")
}

func contains(rids []int64, rid int64) bool {
	for _, r := range rids {
		if r == rid {
			return true
		}
	}
	return false
}
