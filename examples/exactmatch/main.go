// Exact-match with Bloom filters: the paper's §V-A scenario. A monitoring
// pipeline stores sensor traces (NOAA-like temperature series) and answers
// "has this exact trace been recorded?" — the Bloom filter spares the
// high-latency partition load whenever the answer is no.
//
//	go run ./examples/exactmatch
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/tardisdb/tardis"
)

func main() {
	log.SetFlags(0)
	work, err := os.MkdirTemp("", "tardis-exactmatch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	cl, err := tardis.NewCluster(tardis.ClusterConfig{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := tardis.NewGenerator(tardis.NOAA, tardis.DefaultSeriesLen(tardis.NOAA))
	if err != nil {
		log.Fatal(err)
	}
	src, err := tardis.GenerateStore(gen, 7, 30_000, filepath.Join(work, "data"), 3_000, true)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tardis.DefaultConfig()
	cfg.GMaxSize = 1_500
	ix, err := tardis.Build(cl, src, filepath.Join(work, "index"), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed 30k NOAA-like traces into %d partitions\n", ix.NumPartitions())

	// Persist and reload: production flows never keep the build process
	// alive for queries.
	if err := ix.Save(); err != nil {
		log.Fatal(err)
	}
	ix, err = tardis.Load(cl, ix.Store.Dir())
	if err != nil {
		log.Fatal(err)
	}

	// Queries: half stored traces, half never-recorded ones.
	type probe struct {
		name  string
		query tardis.Series
		want  bool
	}
	var probes []probe
	for i := 0; i < 5; i++ {
		rec := tardis.GenerateRecord(gen, 7, int64(i*1000))
		probes = append(probes, probe{
			name:  fmt.Sprintf("stored trace %d", rec.RID),
			query: tardis.ZNormalize(rec.Values),
			want:  true,
		})
		absent := tardis.GenerateRecord(gen, 99, int64(i))
		probes = append(probes, probe{
			name:  fmt.Sprintf("unknown trace %d", i),
			query: tardis.ZNormalize(absent.Values),
			want:  false,
		})
	}

	var loadsBF, loadsNoBF int
	for _, p := range probes {
		withBF, stBF, err := ix.ExactMatch(p.query, true)
		if err != nil {
			log.Fatal(err)
		}
		withoutBF, stNoBF, err := ix.ExactMatch(p.query, false)
		if err != nil {
			log.Fatal(err)
		}
		loadsBF += stBF.PartitionsLoaded
		loadsNoBF += stNoBF.PartitionsLoaded
		if (len(withBF) > 0) != p.want || (len(withoutBF) > 0) != p.want {
			log.Fatalf("%s: got %v/%v, want found=%v", p.name, withBF, withoutBF, p.want)
		}
		verdict := "absent"
		if len(withBF) > 0 {
			verdict = fmt.Sprintf("found rid(s) %v", withBF)
		}
		note := ""
		if stBF.BloomRejected {
			note = " [bloom filter: skipped partition load]"
		}
		fmt.Printf("  %-18s -> %s%s\n", p.name, verdict, note)
	}
	fmt.Printf("partition loads: %d with Bloom filter vs %d without (the Fig. 14 effect)\n",
		loadsBF, loadsNoBF)
}
