// Command tardis-coord runs one node of the replication coordinator ensemble:
// a replicated registry of worker membership and committed PartitionMap
// versions (see internal/raftlite). Workers register and heartbeat against the
// ensemble (tardis-worker -coord), and the repair loop commits PartitionMap
// version bumps through it (tardis-serve -coord -repair-interval).
//
// Each node's ensemble identity is its advertised address, so leader
// redirects are directly dialable. A single-node "ensemble" works for
// development; three nodes survive one crash.
//
// Usage:
//
//	tardis-coord -listen 127.0.0.1:7801 -peers 127.0.0.1:7801,127.0.0.1:7802,127.0.0.1:7803 &
//	tardis-coord -listen 127.0.0.1:7802 -peers 127.0.0.1:7801,127.0.0.1:7802,127.0.0.1:7803 &
//	tardis-coord -listen 127.0.0.1:7803 -peers 127.0.0.1:7801,127.0.0.1:7802,127.0.0.1:7803 &
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/raftlite"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7801", "address to listen on")
		advertise = flag.String("advertise", "", "address peers and clients dial (default the listen address); must appear in -peers")
		peers     = flag.String("peers", "", "comma-separated ensemble member addresses, including this node (default just this node)")
		election  = flag.Duration("election-timeout", 150*time.Millisecond, "base raft election timeout")
		debugAddr = flag.String("debug-addr", "", "optional address for the debug server (/metrics, /debug/traces, /debug/pprof)")
	)
	applyLog := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	applyLog()
	logger := obs.Logger("tardis-coord")

	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			obs.Fatal(logger, "debug server failed", "addr", *debugAddr, "err", err)
		}
		logger.Info("debug server listening", "addr", addr)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		obs.Fatal(logger, "listen failed", "addr", *listen, "err", err)
	}
	self := *advertise
	if self == "" {
		self = ln.Addr().String()
	}
	var members []string
	if *peers == "" {
		members = []string{self}
	} else {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				members = append(members, p)
			}
		}
	}
	found := false
	for _, m := range members {
		if m == self {
			found = true
		}
	}
	if !found {
		obs.Fatal(logger, "this node's address is not in the peer list",
			"advertise", self, "peers", members,
			"hint", "pass -advertise matching one -peers entry")
	}

	// Peer ids ARE their addresses: raft leader hints double as dialable
	// redirect targets for workers and frontends.
	addrs := make(map[string]string, len(members))
	for _, m := range members {
		addrs[m] = m
	}
	tr := raftlite.NewRPCTransport(addrs, 0)
	defer tr.Close()
	reg, err := raftlite.NewRegistry(raftlite.Config{
		ID:              self,
		Peers:           members,
		ElectionTimeout: *election,
	}, tr)
	if err != nil {
		obs.Fatal(logger, "registry init failed", "err", err)
	}
	reg.Node().Start()
	defer reg.Node().Stop()

	fmt.Printf("coordinator %s listening on %s (ensemble of %d)\n", self, ln.Addr(), len(members))
	logger.Info("coordinator listening", "id", self, "addr", ln.Addr().String(), "ensemble", len(members))
	if err := raftlite.Serve(ln, reg); err != nil {
		logger.Error("coordinator serve stopped", "err", err)
		os.Exit(1)
	}
}
