// Command tardis-gen generates one of the paper's evaluation datasets into a
// block store on disk.
//
// Usage:
//
//	tardis-gen -kind randomwalk -n 1000000 -len 256 -out data/rw1m
//	tardis-gen -kind noaa -n 200000 -out data/noaa  # len defaults per kind
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/obs"
)

func main() {
	var (
		kind      = flag.String("kind", "randomwalk", "dataset kind: randomwalk | texmex | dna | noaa")
		n         = flag.Int64("n", 100_000, "number of time series to generate")
		seriesLen = flag.Int("len", 0, "series length (0 = the paper's default for the kind)")
		seed      = flag.Int64("seed", 1, "generation seed")
		out       = flag.String("out", "", "output store directory (required)")
		blockRecs = flag.Int64("block", 10_000, "records per block file (the HDFS block stand-in)")
		raw       = flag.Bool("raw", false, "skip z-normalization (paper normalizes before indexing)")
	)
	applyLog := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	applyLog()
	logger := obs.Logger("tardis-gen")

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	k := dataset.Kind(*kind)
	length := *seriesLen
	if length == 0 {
		length = dataset.DefaultLen(k)
		if length == 0 {
			obs.Fatal(logger, "unknown dataset kind", "kind", *kind)
		}
	}
	g, err := dataset.New(k, length)
	if err != nil {
		obs.Fatal(logger, "generator init failed", "kind", *kind, "err", err)
	}
	start := time.Now()
	st, err := dataset.WriteStore(g, *seed, *n, *out, *blockRecs, !*raw)
	if err != nil {
		obs.Fatal(logger, "store write failed", "out", *out, "err", err)
	}
	pids, err := st.Partitions()
	if err != nil {
		obs.Fatal(logger, "partition list failed", "err", err)
	}
	size, err := st.SizeBytes()
	if err != nil {
		obs.Fatal(logger, "store size failed", "err", err)
	}
	fmt.Printf("generated %s: %d series of length %d in %d blocks (%.1f MiB) in %s\n",
		*kind, *n, length, len(pids), float64(size)/(1<<20), time.Since(start).Round(time.Millisecond))
}
