// Command tardis-query runs similarity queries against a saved TARDIS index.
//
// Usage:
//
//	tardis-query -index data/idx -mode exact -rid 12345 -kind randomwalk -seed 1
//	tardis-query -index data/idx -mode knn -k 100 -strategy mpa -rid 7
//	tardis-query -index data/idx -mode knn -k 10 -strategy all -count 20
//
// Queries are drawn from the generator identified by -kind/-seed: -rid picks
// a stored record (an "existing" query); -absent draws from a disjoint seed
// instead. -count repeats with consecutive rids and reports averages.
//
// -explain (or -explain=json) flight-records the first query and prints its
// execution profile: stage timings, per-partition pruned/refined counts,
// qpar worker activity, and — with -rpc — per-worker RPC attempts and
// grafted worker sub-scans. -rpc adds the dist and dist-exact strategies.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/knn"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/qprof"
	"github.com/tardisdb/tardis/internal/ts"
)

// explainFlag is -explain: bare selects the text tree, =json the raw
// snapshot. A flag.Value with IsBoolFlag lets both spellings parse.
type explainFlag struct{ mode string }

func (e *explainFlag) String() string { return e.mode }

func (e *explainFlag) Set(v string) error {
	switch v {
	case "", "true", "text":
		e.mode = "text"
	case "json":
		e.mode = "json"
	case "false":
		e.mode = ""
	default:
		return fmt.Errorf("want text or json, got %q", v)
	}
	return nil
}

func (e *explainFlag) IsBoolFlag() bool { return true }

func main() {
	var (
		indexDir = flag.String("index", "", "saved index directory (required)")
		mode     = flag.String("mode", "knn", "query mode: exact | knn | range")
		kind     = flag.String("kind", "randomwalk", "dataset kind that generated the data")
		seed     = flag.Int64("seed", 1, "dataset generation seed")
		rid      = flag.Int64("rid", 0, "record id for the first query")
		count    = flag.Int("count", 1, "number of queries (consecutive rids)")
		absent   = flag.Bool("absent", false, "query series guaranteed absent from the dataset")
		k        = flag.Int("k", 10, "k for kNN queries")
		strategy = flag.String("strategy", "mpa", "kNN strategy: tna | opa | mpa | exact | dtw | auto | all")
		eps      = flag.Float64("eps", 0, "range query radius (mode=range)")
		band     = flag.Int("band", 5, "Sakoe-Chiba band for the dtw strategy")
		noBloom  = flag.Bool("no-bloom", false, "exact match without the Bloom filter")
		truth    = flag.Bool("truth", false, "also compute exact ground truth and report recall/error ratio")
		workers  = flag.Int("workers", 8, "cluster workers for ground truth scans")
		qpar     = flag.Int("query-parallelism", 0, "per-query workers (0 = GOMAXPROCS, 1 = serial)")
		traceOut = flag.String("trace", "", "collect trace spans and write the trace trees as JSON to this file (\"-\" = stderr)")
		rpcAddrs = flag.String("rpc", "", "comma-separated tardis-worker addresses enabling the dist and dist-exact strategies")
	)
	var explain explainFlag
	flag.Var(&explain, "explain", "print the first query's execution profile (bare = text tree, =json = raw snapshot)")
	applyLog := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	applyLog()
	logger := obs.Logger("tardis-query")
	if *traceOut != "" {
		obs.SetTracing(true)
		defer dumpTraces(logger, *traceOut)
	}
	if *indexDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	cl, err := cluster.New(cluster.Config{Workers: *workers})
	if err != nil {
		obs.Fatal(logger, "cluster init failed", "err", err)
	}
	ix, err := core.Load(cl, *indexDir)
	if err != nil {
		obs.Fatal(logger, "index load failed", "index", *indexDir, "err", err)
	}
	if err := ix.SetQueryParallelism(*qpar); err != nil {
		obs.Fatal(logger, "invalid query parallelism", "value", *qpar, "err", err)
	}
	gen, err := dataset.New(dataset.Kind(*kind), ix.SeriesLen())
	if err != nil {
		obs.Fatal(logger, "dataset generator init failed", "kind", *kind, "err", err)
	}
	genSeed := *seed
	if *absent {
		genSeed += 1_000_003
	}

	var pool *clusterrpc.Pool
	if *rpcAddrs != "" {
		pool, err = clusterrpc.DialContext(context.Background(), strings.Split(*rpcAddrs, ","), clusterrpc.DefaultPolicy())
		if err != nil {
			obs.Fatal(logger, "worker pool dial failed", "err", err)
		}
		defer pool.Close()
	}

	makeQuery := func(i int) ts.Series {
		rec := dataset.Record(gen, genSeed, *rid+int64(i))
		return rec.Values.ZNormalize()
	}
	// profiled returns the context for query i of a strategy run: with
	// -explain set, the first query carries a flight-recorder profile.
	profiled := func(i int, name, detail string) (context.Context, *qprof.Profile) {
		if explain.mode == "" || i != 0 {
			return context.Background(), nil
		}
		p := qprof.New(name)
		p.SetDetail(detail)
		return qprof.NewContext(context.Background(), p), p
	}

	switch *mode {
	case "exact":
		var total time.Duration
		found := 0
		for i := 0; i < *count; i++ {
			q := makeQuery(i)
			ctx, prof := profiled(i, "exact-match", fmt.Sprintf("len=%d", len(q)))
			rids, st, err := ix.ExactMatchCtx(ctx, q, !*noBloom)
			if err != nil {
				obs.Fatal(logger, "exact-match query failed", "err", err)
			}
			writeExplain(explain.mode, prof, st.Duration)
			total += st.Duration
			if len(rids) > 0 {
				found++
			}
			if *count == 1 {
				fmt.Printf("matches: %v (partitions loaded %d, bloom rejected %v, %s)\n",
					rids, st.PartitionsLoaded, st.BloomRejected, st.Duration.Round(time.Microsecond))
			}
		}
		if *count > 1 {
			fmt.Printf("%d exact-match queries: %d found, avg %s\n",
				*count, found, (total / time.Duration(*count)).Round(time.Microsecond))
		}
	case "knn":
		strategies := map[string]func(context.Context, ts.Series, int) ([]core.Neighbor, core.QueryStats, error){
			"tna":   ix.KNNTargetNodeCtx,
			"opa":   ix.KNNOnePartitionCtx,
			"mpa":   ix.KNNMultiPartitionCtx,
			"exact": ix.KNNExactCtx,
			"dtw": func(ctx context.Context, q ts.Series, k int) ([]core.Neighbor, core.QueryStats, error) {
				return ix.KNNDTWCtx(ctx, q, k, *band)
			},
			"auto": func(ctx context.Context, q ts.Series, k int) ([]core.Neighbor, core.QueryStats, error) {
				res, chosen, st, err := ix.KNNAutoCtx(ctx, q, k)
				if err == nil {
					fmt.Printf("auto chose %s\n", chosen)
				}
				return res, st, err
			},
		}
		if pool != nil {
			strategies["dist"] = func(ctx context.Context, q ts.Series, k int) ([]core.Neighbor, core.QueryStats, error) {
				return clusterrpc.DistKNN(ctx, pool, ix.Store.Dir(), ix.Config(), q, k)
			}
			strategies["dist-exact"] = func(ctx context.Context, q ts.Series, k int) ([]core.Neighbor, core.QueryStats, error) {
				return clusterrpc.DistKNNExact(ctx, pool, ix.Store.Dir(), ix.Config(), q, k)
			}
		}
		names := []string{*strategy}
		if *strategy == "all" {
			names = []string{"tna", "opa", "mpa", "exact"}
		}
		for _, name := range names {
			run, ok := strategies[name]
			if !ok {
				obs.Fatal(logger, "unknown strategy (dist and dist-exact need -rpc)", "strategy", name)
			}
			var total time.Duration
			var recall, errRatio float64
			evaluated := 0
			for i := 0; i < *count; i++ {
				q := makeQuery(i)
				ctx, prof := profiled(i, name, fmt.Sprintf("k=%d len=%d", *k, len(q)))
				res, st, err := run(ctx, q, *k)
				if err != nil {
					obs.Fatal(logger, "knn query failed", "strategy", name, "err", err)
				}
				writeExplain(explain.mode, prof, st.Duration)
				total += st.Duration
				if *truth {
					gt, err := ix.GroundTruthKNN(q, *k)
					if err != nil {
						obs.Fatal(logger, "ground truth scan failed", "err", err)
					}
					recall += knn.Recall(gt, res)
					errRatio += knn.ErrorRatio(gt, res)
					evaluated++
				}
				if *count == 1 {
					show := len(res)
					if show > 10 {
						show = 10
					}
					fmt.Printf("%s: top %d of %d results (partitions %d, candidates %d, %s)\n",
						name, show, len(res), st.PartitionsLoaded, st.Candidates, st.Duration.Round(time.Microsecond))
					for j := 0; j < show; j++ {
						fmt.Printf("  #%d rid=%d dist=%.4f\n", j+1, res[j].RID, res[j].Dist)
					}
				}
			}
			if *count > 1 {
				fmt.Printf("%s: %d queries, avg %s", name, *count, (total / time.Duration(*count)).Round(time.Microsecond))
				if evaluated > 0 {
					fmt.Printf(", recall %.1f%%, error ratio %.3f",
						recall/float64(evaluated)*100, errRatio/float64(evaluated))
				}
				fmt.Println()
			} else if *truth {
				fmt.Printf("%s: recall %.1f%%, error ratio %.3f\n", name, recall*100, errRatio)
			}
		}
	case "range":
		q := makeQuery(0)
		ctx, prof := profiled(0, "range", fmt.Sprintf("eps=%.3f len=%d", *eps, len(q)))
		res, st, err := ix.RangeQueryCtx(ctx, q, *eps)
		if err != nil {
			obs.Fatal(logger, "range query failed", "err", err)
		}
		writeExplain(explain.mode, prof, st.Duration)
		fmt.Printf("range query eps=%.3f: %d records (partitions %d, candidates %d, %s)\n",
			*eps, len(res), st.PartitionsLoaded, st.Candidates, st.Duration.Round(time.Microsecond))
		show := len(res)
		if show > 20 {
			show = 20
		}
		for j := 0; j < show; j++ {
			fmt.Printf("  rid=%d dist=%.4f\n", res[j].RID, res[j].Dist)
		}
	default:
		obs.Fatal(logger, "unknown mode (want exact, knn, or range)", "mode", *mode)
	}
}

// writeExplain renders a finished query's flight record to stdout; a nil
// profile (explain off, or not the profiled query) is a no-op.
func writeExplain(mode string, p *qprof.Profile, dur time.Duration) {
	if p == nil {
		return
	}
	p.Finish(dur, nil)
	snap := p.Snapshot()
	p.Release()
	if mode == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
		return
	}
	qprof.WriteText(os.Stdout, snap)
}

// dumpTraces writes the collected trace trees to path ("-" = stderr).
func dumpTraces(logger *slog.Logger, path string) {
	w := os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			logger.Error("trace output failed", "path", path, "err", err)
			return
		}
		defer f.Close()
		w = f
	}
	if err := obs.WriteTracesJSON(w); err != nil {
		logger.Error("trace encode failed", "err", err)
	}
}
