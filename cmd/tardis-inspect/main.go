// Command tardis-inspect prints the structure and statistics of a saved
// TARDIS index: global tree shape, partition size distribution, local index
// shapes, and Bloom filter fill.
//
// Usage:
//
//	tardis-inspect -index data/idx
//	tardis-inspect -index data/idx -tree        # dump the global tree
//	tardis-inspect -index data/idx -partitions  # per-partition detail
//	tardis-inspect -index data/idx -replicas    # replica placement + checksums
//	tardis-inspect -queries 127.0.0.1:8080,127.0.0.1:9090  # cluster-wide slow queries
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/qprof"
	"github.com/tardisdb/tardis/internal/sigtree"
	"github.com/tardisdb/tardis/internal/storage"
)

func main() {
	var (
		indexDir   = flag.String("index", "", "saved index directory (required)")
		dumpTree   = flag.Bool("tree", false, "dump the global sigTree")
		partitions = flag.Bool("partitions", false, "per-partition detail")
		replicas   = flag.Bool("replicas", false, "replica placement and checksums from the partition map")
		queries    = flag.String("queries", "", "comma-separated daemon addresses (tardis-serve listen or any -debug-addr); aggregate their /debug/queries into a cluster-wide query report instead of inspecting an index")
	)
	applyLog := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	applyLog()
	logger := obs.Logger("tardis-inspect")
	if *queries != "" {
		inspectQueries(logger, strings.Split(*queries, ","))
		return
	}
	if *indexDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	cl, err := cluster.New(cluster.Config{Workers: 4})
	if err != nil {
		obs.Fatal(logger, "cluster init failed", "err", err)
	}
	ix, err := core.Load(cl, *indexDir)
	if err != nil {
		obs.Fatal(logger, "index load failed", "index", *indexDir, "err", err)
	}
	cfg := ix.Config()
	bs := ix.BuildStats()

	fmt.Printf("TARDIS index at %s\n", *indexDir)
	fmt.Printf("  series length      %d\n", ix.SeriesLen())
	fmt.Printf("  word length        %d\n", cfg.WordLen)
	fmt.Printf("  initial cardinality %d (2^%d)\n", 1<<cfg.InitialBits, cfg.InitialBits)
	fmt.Printf("  records            %d\n", bs.Records)
	fmt.Printf("  partitions         %d (capacity %d)\n", ix.NumPartitions(), cfg.GMaxSize)
	fmt.Printf("  pending delta      %d records\n", ix.DeltaCount())

	gs := ix.Global.ComputeStats()
	fmt.Printf("\nTardis-G (global sigTree)\n")
	fmt.Printf("  nodes %d (internal %d, leaves %d)\n", gs.Nodes, gs.Internal, gs.Leaves)
	fmt.Printf("  leaf depth: max %d, avg %.2f\n", gs.MaxLeafDepth, gs.AvgLeafDepth)
	fmt.Printf("  serialized size %d bytes\n", ix.Global.SerializedSize())

	// Partition size distribution.
	pids, err := ix.Store.Partitions()
	if err != nil {
		obs.Fatal(logger, "partition list failed", "err", err)
	}
	var sizes []int64
	var total int64
	for _, pid := range pids {
		n, err := ix.Store.PartitionCount(pid)
		if err != nil {
			obs.Fatal(logger, "partition count failed", "pid", pid, "err", err)
		}
		sizes = append(sizes, n)
		total += n
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	fmt.Printf("\nPartition sizes (records)\n")
	if len(sizes) > 0 {
		fmt.Printf("  min %d, median %d, max %d, mean %.1f\n",
			sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1], float64(total)/float64(len(sizes)))
		fmt.Printf("  utilization vs capacity: %.1f%%\n",
			float64(total)/float64(int64(len(sizes))*cfg.GMaxSize)*100)
	}

	// Local index shapes and Bloom fill, aggregated.
	var localNodes, localLeaves int
	var bloomBits, bloomMembers int64
	withBloom := 0
	for _, l := range ix.Locals {
		if l == nil {
			continue
		}
		s := l.Tree.ComputeStats()
		localNodes += s.Nodes
		localLeaves += s.Leaves
		if l.Bloom != nil {
			withBloom++
			bloomBits += int64(l.Bloom.BitCount())
			bloomMembers += int64(l.Bloom.Count())
		}
	}
	fmt.Printf("\nTardis-L (local sigTrees, aggregated)\n")
	fmt.Printf("  nodes %d, leaves %d across %d partitions\n", localNodes, localLeaves, ix.NumPartitions())
	if withBloom > 0 {
		fmt.Printf("  bloom filters: %d, %d total bits, %d members\n", withBloom, bloomBits, bloomMembers)
	}

	if *partitions {
		fmt.Printf("\nPer-partition detail\n")
		for _, pid := range pids {
			n, _ := ix.Store.PartitionCount(pid)
			l := ix.Locals[pid]
			if l == nil {
				fmt.Printf("  p%04d  %7d records  (no local index)\n", pid, n)
				continue
			}
			s := l.Tree.ComputeStats()
			fmt.Printf("  p%04d  %7d records  %4d leaves  depth max %d avg %.1f\n",
				pid, n, s.Leaves, s.MaxLeafDepth, s.AvgLeafDepth)
		}
	}

	if *replicas {
		pm, err := clusterrpc.LoadPartitionMap(*indexDir)
		if err != nil {
			obs.Fatal(logger, "partition map load failed", "err", err)
		}
		if pm == nil {
			fmt.Printf("\nReplication: none (no partition map; build with -rpc ... -replication 2)\n")
		} else {
			fmt.Printf("\nReplication (partition map v%d, ×%d)\n", pm.Version, pm.Replication)
			for _, e := range pm.Entries {
				marks := make([]string, 0, len(e.Replicas))
				for _, addr := range e.Replicas {
					state := "?"
					if rst, err := storage.Open(clusterrpc.ReplicaDir(*indexDir, addr)); err != nil {
						state = "missing"
					} else if sum, err := rst.PartitionChecksum(e.PID); err != nil {
						state = "unreadable"
					} else if sum != e.Checksum {
						state = "MISMATCH"
					} else {
						state = "ok"
					}
					marks = append(marks, fmt.Sprintf("%s=%s", addr, state))
				}
				fmt.Printf("  p%04d  crc32c %08x  %s\n", e.PID, e.Checksum, strings.Join(marks, "  "))
			}
		}
	}

	if *dumpTree {
		fmt.Printf("\nGlobal tree\n")
		ix.Global.Walk(func(n *sigtree.Node) {
			indent := strings.Repeat("  ", n.Layer)
			kind := "internal"
			if n.IsLeaf() {
				kind = "leaf"
			}
			sig := string(n.Sig)
			if sig == "" {
				sig = "<root>"
			}
			fmt.Printf("  %s%-16s %-8s count=%-8d pids=%v\n", indent, sig, kind, n.Count, n.PIDs)
		})
	}
}

// inspectQueries scrapes /debug/queries from every listed daemon (serve and
// workers alike) and merges the flight-recorder state into one cluster-wide
// report: per-node strategy digests plus the slowest queries across the
// whole cluster, each stamped with the node it ran on.
func inspectQueries(logger *slog.Logger, addrs []string) {
	client := &http.Client{Timeout: 5 * time.Second}
	type nodePayload struct {
		addr string
		p    *qprof.DebugPayload
	}
	var nodes []nodePayload
	var merged []*qprof.Snapshot
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		url := addr
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		resp, err := client.Get(url + "/debug/queries")
		if err != nil {
			logger.Error("scrape failed", "addr", addr, "err", err)
			continue
		}
		var p qprof.DebugPayload
		err = json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		if err != nil {
			logger.Error("bad /debug/queries payload", "addr", addr, "err", err)
			continue
		}
		nodes = append(nodes, nodePayload{addr: addr, p: &p})
		for _, s := range append(append([]*qprof.Snapshot{}, p.Slowest...), p.Recent...) {
			if s.Node == "" {
				s.Node = addr
			}
			merged = append(merged, s)
		}
	}
	if len(nodes) == 0 {
		obs.Fatal(logger, "no node answered /debug/queries")
	}

	fmt.Printf("Cluster query report (%d of %d nodes)\n", len(nodes), len(addrs))
	for _, n := range nodes {
		fmt.Printf("\nnode %s  sample %.3g  slow ≥ %.0fms\n", n.addr, n.p.SampleRate, n.p.SlowMS)
		strategies := make([]string, 0, len(n.p.Digests))
		for name := range n.p.Digests {
			strategies = append(strategies, name)
		}
		sort.Strings(strategies)
		for _, name := range strategies {
			d := n.p.Digests[name]
			fmt.Printf("  %-14s %6d queries  mean %8.3fms  p50 %8.3fms  p95 %8.3fms  p99 %8.3fms\n",
				name, d.Count, d.MeanMS, d.P50MS, d.P95MS, d.P99MS)
		}
	}

	// Dedup by profile id (a query can sit in both the recent and slow
	// rings), then rank slowest-first across the cluster.
	seen := map[string]bool{}
	top := merged[:0]
	for _, s := range merged {
		if s.ID != "" && seen[s.ID] {
			continue
		}
		if s.ID != "" {
			seen[s.ID] = true
		}
		top = append(top, s)
	}
	sort.SliceStable(top, func(i, j int) bool { return top[i].DurationMS > top[j].DurationMS })
	if len(top) > 15 {
		top = top[:15]
	}
	fmt.Printf("\nTop queries (slowest across cluster)\n")
	if len(top) == 0 {
		fmt.Printf("  none recorded\n")
		return
	}
	for i, s := range top {
		retried := 0
		for _, sc := range s.Scans {
			if sc.Retried {
				retried++
			}
		}
		line := fmt.Sprintf("  %2d. %9.3fms  %-14s node=%s", i+1, s.DurationMS, s.Strategy, s.Node)
		if s.ID != "" {
			line += "  id=" + s.ID
		}
		if len(s.Scans) > 0 {
			line += fmt.Sprintf("  partitions=%d", len(s.Scans))
		}
		if len(s.RPCs) > 0 {
			line += fmt.Sprintf("  rpcs=%d", len(s.RPCs))
		}
		if retried > 0 {
			line += fmt.Sprintf("  retried=%d", retried)
		}
		if s.TraceID != "" {
			line += "  trace=" + s.TraceID
		}
		if s.Error != "" {
			line += "  err=" + s.Error
		}
		fmt.Println(line)
	}
}
