// Command tardis-worker runs one RPC worker process for distributed TARDIS
// index construction and querying. Workers must share a filesystem with the
// coordinator (tardis-build -rpc, tardis-serve -rpc).
//
// Usage:
//
//	tardis-worker -listen 127.0.0.1:7701 -id w1 &
//	tardis-worker -listen 127.0.0.1:7702 -id w2 &
//	tardis-build -src data/rw1m -dst data/idx -rpc 127.0.0.1:7701,127.0.0.1:7702
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
	"github.com/tardisdb/tardis/internal/obs"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7701", "address to listen on")
		id         = flag.String("id", "", "worker id (default derived from pid)")
		rpcTimeout = flag.Duration("rpc-timeout", 0, "idle deadline per coordinator connection; reads that stall longer drop the connection (0 = never)")
		debugAddr  = flag.String("debug-addr", "", "optional address for the debug server (/metrics, /debug/traces, /debug/pprof)")
	)
	applyLog := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	applyLog()
	logger := obs.Logger("tardis-worker")

	workerID := *id
	if workerID == "" {
		workerID = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			obs.Fatal(logger, "debug server failed", "addr", *debugAddr, "err", err)
		}
		logger.Info("debug server listening", "addr", addr)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		obs.Fatal(logger, "listen failed", "addr", *listen, "err", err)
	}
	if *rpcTimeout > 0 {
		ln = idleListener{Listener: ln, d: *rpcTimeout}
	}
	fmt.Printf("worker %s listening on %s\n", workerID, ln.Addr())
	logger.Info("worker listening", "worker", workerID, "addr", ln.Addr().String())
	if err := clusterrpc.Serve(ln, workerID); err != nil {
		obs.Fatal(logger, "worker serve stopped", "err", err)
	}
}

// idleListener drops coordinator connections whose reads stall longer than d,
// so a dead or wedged coordinator cannot pin worker connections forever. The
// deadline is re-armed on every read; an idle-but-healthy coordinator simply
// reconnects (the pool redials dropped clients on the next call).
type idleListener struct {
	net.Listener
	d time.Duration
}

func (l idleListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return idleConn{Conn: c, d: l.d}, nil
}

type idleConn struct {
	net.Conn
	d time.Duration
}

func (c idleConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.d)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}
