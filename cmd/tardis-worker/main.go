// Command tardis-worker runs one RPC worker process for distributed TARDIS
// index construction and querying. Workers must share a filesystem with the
// coordinator (tardis-build -rpc, tardis-serve -rpc).
//
// Usage:
//
//	tardis-worker -listen 127.0.0.1:7701 -id w1 &
//	tardis-worker -listen 127.0.0.1:7702 -id w2 &
//	tardis-build -src data/rw1m -dst data/idx -rpc 127.0.0.1:7701,127.0.0.1:7702
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/raftlite"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7701", "address to listen on")
		id         = flag.String("id", "", "worker id (default derived from pid)")
		rpcTimeout = flag.Duration("rpc-timeout", 0, "idle deadline per coordinator connection; reads that stall longer drop the connection (0 = never)")
		coord      = flag.String("coord", "", "comma-separated tardis-coord ensemble addresses to register with")
		advertise  = flag.String("advertise", "", "worker address advertised to the coordinator (default the listen address)")
		heartbeat  = flag.Duration("heartbeat", 2*time.Second, "coordinator heartbeat period (with -coord)")
		debugAddr  = flag.String("debug-addr", "", "optional address for the debug server (/metrics, /debug/traces, /debug/pprof)")
	)
	applyLog := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	applyLog()
	logger := obs.Logger("tardis-worker")

	workerID := *id
	if workerID == "" {
		workerID = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			obs.Fatal(logger, "debug server failed", "addr", *debugAddr, "err", err)
		}
		logger.Info("debug server listening", "addr", addr)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		obs.Fatal(logger, "listen failed", "addr", *listen, "err", err)
	}
	if *rpcTimeout > 0 {
		ln = idleListener{Listener: ln, d: *rpcTimeout}
	}
	fmt.Printf("worker %s listening on %s\n", workerID, ln.Addr())
	logger.Info("worker listening", "worker", workerID, "addr", ln.Addr().String())
	if *coord != "" {
		adv := *advertise
		if adv == "" {
			adv = ln.Addr().String()
		}
		client, err := raftlite.NewClient(strings.Split(*coord, ","), 0)
		if err != nil {
			obs.Fatal(logger, "coordinator client failed", "err", err)
		}
		if _, err := client.Register(adv, workerID); err != nil {
			logger.Warn("coordinator registration failed; retrying via heartbeat", "err", err)
		} else {
			logger.Info("registered with coordinator", "advertise", adv)
		}
		go heartbeatLoop(client, adv, workerID, *heartbeat, logger)
	}
	if err := clusterrpc.Serve(ln, workerID); err != nil {
		obs.Fatal(logger, "worker serve stopped", "err", err)
	}
}

// heartbeatLoop refreshes the worker's membership entry forever; transient
// coordinator outages (elections, restarts) only cost missed beats, and the
// first beat after an outage re-registers the worker.
func heartbeatLoop(client *raftlite.Client, adv, workerID string, period time.Duration, logger interface {
	Warn(msg string, args ...any)
}) {
	failing := false
	for {
		time.Sleep(period)
		if _, err := client.Heartbeat(adv, workerID); err != nil {
			if !failing {
				logger.Warn("coordinator heartbeat failing", "err", err)
			}
			failing = true
			continue
		}
		failing = false
	}
}

// idleListener drops coordinator connections whose reads stall longer than d,
// so a dead or wedged coordinator cannot pin worker connections forever. The
// deadline is re-armed on every read; an idle-but-healthy coordinator simply
// reconnects (the pool redials dropped clients on the next call).
type idleListener struct {
	net.Listener
	d time.Duration
}

func (l idleListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return idleConn{Conn: c, d: l.d}, nil
}

type idleConn struct {
	net.Conn
	d time.Duration
}

func (c idleConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.d)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}
