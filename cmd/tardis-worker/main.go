// Command tardis-worker runs one RPC worker process for distributed TARDIS
// index construction. Workers must share a filesystem with the coordinator
// (tardis-build -rpc).
//
// Usage:
//
//	tardis-worker -listen 127.0.0.1:7701 -id w1 &
//	tardis-worker -listen 127.0.0.1:7702 -id w2 &
//	tardis-build -src data/rw1m -dst data/idx -rpc 127.0.0.1:7701,127.0.0.1:7702
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tardis-worker: ")

	var (
		listen = flag.String("listen", "127.0.0.1:7701", "address to listen on")
		id     = flag.String("id", "", "worker id (default derived from pid)")
	)
	flag.Parse()

	workerID := *id
	if workerID == "" {
		workerID = fmt.Sprintf("worker-%d", os.Getpid())
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker %s listening on %s\n", workerID, ln.Addr())
	if err := clusterrpc.Serve(ln, workerID); err != nil {
		log.Fatal(err)
	}
}
