// Command tardis-build constructs a TARDIS (or DPiSAX baseline) index over a
// generated dataset store and saves it for tardis-query.
//
// Usage:
//
//	tardis-build -src data/rw1m -dst data/rw1m-idx
//	tardis-build -src data/rw1m -dst data/rw1m-base -system dpisax
//	tardis-build -src data/rw1m -dst data/rw1m-idx -rpc 127.0.0.1:7701,127.0.0.1:7702
//
// The -rpc form distributes the build across running tardis-worker processes
// that share the filesystem with this coordinator.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/dpisax"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/storage"
)

// logger is the structured log stream for this command.
var logger = obs.Logger("tardis-build")

func main() {
	var (
		src        = flag.String("src", "", "source dataset store directory (required)")
		dst        = flag.String("dst", "", "output clustered store directory (required)")
		system     = flag.String("system", "tardis", "index system: tardis | dpisax")
		workers    = flag.Int("workers", 8, "simulated workers for the in-process build")
		gmax       = flag.Int64("gmax", 0, "partition capacity G-MaxSize in records (0 = n/30)")
		lmax       = flag.Int64("lmax", 1000, "local leaf split threshold L-MaxSize")
		samplePct  = flag.Float64("sample", 0.10, "block-level sampling percentage")
		seed       = flag.Int64("seed", 1, "sampling seed")
		noBloom    = flag.Bool("no-bloom", false, "skip Bloom filter construction (TARDIS only)")
		compress   = flag.Bool("compress", false, "flate-compress the clustered partitions (TARDIS only)")
		rpcAddrs   = flag.String("rpc", "", "comma-separated tardis-worker addresses for the distributed build")
		replicas   = flag.Int("replication", 0, "copies of each partition for -rpc builds (≥2 writes replica stores and a partition map; 0/1 = unreplicated)")
		workDir    = flag.String("work", "", "spill directory for -rpc builds (default <dst>-spill)")
		rpcTimeout = flag.Duration("rpc-timeout", 0, "per-RPC deadline for -rpc builds (0 = policy default)")
		retries    = flag.Int("retries", 0, "attempts per RPC for -rpc builds (0 = policy default)")
		verbose    = flag.Bool("v", false, "print per-stage cluster metrics after the build")
	)
	applyLog := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	applyLog()
	if *src == "" || *dst == "" {
		flag.Usage()
		os.Exit(2)
	}

	st, err := storage.Open(*src)
	if err != nil {
		obs.Fatal(logger, "source store open failed", "src", *src, "err", err)
	}
	total, err := st.TotalRecords()
	if err != nil {
		obs.Fatal(logger, "record count failed", "err", err)
	}
	capacity := *gmax
	if capacity == 0 {
		capacity = total / 30
		if capacity < 200 {
			capacity = 200
		}
	}

	switch *system {
	case "tardis":
		cfg := core.DefaultConfig()
		cfg.GMaxSize = capacity
		cfg.LMaxSize = *lmax
		cfg.SamplePct = *samplePct
		cfg.SampleSeed = *seed
		cfg.BuildBloom = !*noBloom
		if *compress {
			cfg.Compression = storage.Flate
		}
		if *rpcAddrs != "" {
			buildRPC(*src, *dst, *workDir, *rpcAddrs, cfg, *rpcTimeout, *retries, *replicas)
			return
		}
		if *replicas > 1 {
			obs.Fatal(logger, "-replication requires the distributed build", "hint", "add -rpc <worker addresses>")
		}
		cl, err := cluster.New(cluster.Config{Workers: *workers})
		if err != nil {
			obs.Fatal(logger, "cluster init failed", "err", err)
		}
		ix, err := core.Build(cl, st, *dst, cfg)
		if err != nil {
			obs.Fatal(logger, "index build failed", "err", err)
		}
		if err := ix.Save(); err != nil {
			obs.Fatal(logger, "index save failed", "dst", *dst, "err", err)
		}
		bs := ix.BuildStats()
		fmt.Printf("TARDIS index: %d records, %d partitions\n", bs.Records, bs.Partitions)
		fmt.Printf("  global: %s (sample %s, stats %s, skeleton %s, assign %s)\n",
			rd(bs.GlobalTotal), rd(bs.SampleConvert), rd(bs.NodeStatistics), rd(bs.SkeletonBuild), rd(bs.PartitionAssign))
		fmt.Printf("  local:  %s (shuffle %s, build %s, bloom %s)\n",
			rd(bs.LocalTotal), rd(bs.ShuffleReadConvert), rd(bs.LocalConstruct), rd(bs.BloomConstruct))
		fmt.Printf("  total:  %s; index sizes: global %d B, local %d B, bloom %d B\n",
			rd(bs.Total), bs.GlobalIndexBytes, bs.LocalIndexBytes, bs.BloomBytes)
		if *verbose {
			fmt.Println("\ncluster stages:")
			for _, st := range cl.Stages() {
				fmt.Printf("  %-18s tasks=%-4d in=%-8d out=%-8d shuffled=%-8d %s\n",
					st.Name, st.Tasks, st.RecordsIn, st.RecordsOut, st.ShuffledRecords, rd(st.Duration))
			}
		}
	case "dpisax":
		cfg := dpisax.DefaultConfig()
		cfg.GMaxSize = capacity
		cfg.LMaxSize = *lmax
		cfg.SamplePct = *samplePct
		cfg.SampleSeed = *seed
		cl, err := cluster.New(cluster.Config{Workers: *workers})
		if err != nil {
			obs.Fatal(logger, "cluster init failed", "err", err)
		}
		ix, err := dpisax.Build(cl, st, *dst, cfg)
		if err != nil {
			obs.Fatal(logger, "baseline build failed", "err", err)
		}
		bs := ix.BuildStats()
		fmt.Printf("DPiSAX index: %d records, %d partitions\n", bs.Records, bs.Partitions)
		fmt.Printf("  global: %s, local: %s, total: %s, char conversions: %d\n",
			rd(bs.GlobalTotal), rd(bs.LocalTotal), rd(bs.Total), bs.Conversions)
		fmt.Println("note: the DPiSAX baseline index is not persisted; it exists for comparison runs")
	default:
		obs.Fatal(logger, "unknown system (want tardis or dpisax)", "system", *system)
	}
}

func buildRPC(src, dst, workDir, addrs string, cfg core.Config, rpcTimeout time.Duration, retries, replicas int) {
	if workDir == "" {
		workDir = dst + "-spill"
	}
	pol := clusterrpc.DefaultPolicy()
	if rpcTimeout > 0 {
		pol.CallTimeout = rpcTimeout
	}
	if retries > 0 {
		pol.MaxAttempts = retries
	}
	ctx := context.Background()
	pool, err := clusterrpc.DialContext(ctx, strings.Split(addrs, ","), pol)
	if err != nil {
		obs.Fatal(logger, "worker pool dial failed", "err", err)
	}
	defer pool.Close()
	statuses, err := pool.Ping(ctx)
	if err != nil {
		logger.Warn("degraded pool", "err", err)
	}
	for _, s := range statuses {
		if s.Err != nil {
			fmt.Printf("worker %s unreachable: %v\n", s.Addr, s.Err)
			continue
		}
		fmt.Printf("worker %s on %s (pid %d)\n", s.Reply.ID, s.Reply.Hostname, s.Reply.PID)
	}
	stats, err := clusterrpc.BuildDistributedOpts(ctx, pool, src, dst, workDir, cfg,
		clusterrpc.BuildOptions{Replication: replicas})
	if err != nil {
		obs.Fatal(logger, "distributed build failed", "err", err)
	}
	fmt.Printf("distributed TARDIS index: %d records, %d partitions in %s\n",
		stats.Records, stats.Partitions, rd(stats.Total))
	fmt.Printf("  sample %s, shuffle %s, local build %s\n",
		rd(stats.SampleConvert), rd(stats.Shuffle), rd(stats.LocalBuild))
	if stats.MapVersion > 0 {
		fmt.Printf("  replication ×%d in %s (partition map v%d)\n", replicas, rd(stats.Replicate), stats.MapVersion)
	}
	if stats.Reassigned > 0 {
		fmt.Printf("  %d task chunks reassigned after worker failures\n", stats.Reassigned)
	}
	fmt.Printf("load it with tardis-query -index %s\n", dst)
}

func rd(d time.Duration) time.Duration { return d.Round(time.Millisecond) }
