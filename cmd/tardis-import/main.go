// Command tardis-import loads user-supplied time series from CSV into a
// block store ready for tardis-build, or exports an existing store to CSV.
//
// Usage:
//
//	tardis-import -csv data.csv -len 128 -out data/mine -normalize
//	tardis-import -csv data.csv -len 128 -rid -out data/mine   # first column is the id
//	tardis-import -export data/mine -csv dump.csv              # store -> CSV
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/storage"
)

func main() {
	var (
		csvPath   = flag.String("csv", "", "CSV file: input for import, output for -export (required)")
		out       = flag.String("out", "", "store directory to create (import mode)")
		exportDir = flag.String("export", "", "existing store directory to export")
		seriesLen = flag.Int("len", 0, "series length (import mode, required)")
		hasRID    = flag.Bool("rid", false, "first CSV column is the record id")
		normalize = flag.Bool("normalize", false, "z-normalize each imported series")
		block     = flag.Int64("block", 10_000, "records per block file")
		sep       = flag.String("sep", ",", "field separator")
	)
	applyLog := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	applyLog()
	logger := obs.Logger("tardis-import")
	if *csvPath == "" || (*out == "" && *exportDir == "") {
		flag.Usage()
		os.Exit(2)
	}
	comma := ','
	if *sep != "" {
		comma = rune((*sep)[0])
	}

	if *exportDir != "" {
		st, err := storage.Open(*exportDir)
		if err != nil {
			obs.Fatal(logger, "store open failed", "store", *exportDir, "err", err)
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			obs.Fatal(logger, "csv create failed", "path", *csvPath, "err", err)
		}
		defer f.Close()
		if err := st.ExportCSV(f, storage.CSVOptions{Comma: comma}); err != nil {
			obs.Fatal(logger, "csv export failed", "err", err)
		}
		total, _ := st.TotalRecords()
		fmt.Printf("exported %d records to %s\n", total, *csvPath)
		return
	}

	if *seriesLen < 1 {
		obs.Fatal(logger, "-len is required for import")
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		obs.Fatal(logger, "csv open failed", "path", *csvPath, "err", err)
	}
	defer f.Close()
	st, err := storage.Create(*out, *seriesLen)
	if err != nil {
		obs.Fatal(logger, "store create failed", "out", *out, "err", err)
	}
	n, err := st.ImportCSV(f, storage.CSVOptions{
		HasRID: *hasRID, Normalize: *normalize, BlockRecords: *block, Comma: comma,
	})
	if err != nil {
		obs.Fatal(logger, "csv import failed", "err", err)
	}
	pids, _ := st.Partitions()
	fmt.Printf("imported %d records of length %d into %d blocks at %s\n",
		n, *seriesLen, len(pids), *out)
}
