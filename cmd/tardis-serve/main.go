// Command tardis-serve exposes a saved TARDIS index as a JSON-over-HTTP
// query service.
//
// Usage:
//
//	tardis-serve -index data/idx -listen 127.0.0.1:8080
//	tardis-serve -index data/idx -rpc 127.0.0.1:7701,127.0.0.1:7702 -rpc-timeout 30s -retries 3
//
// Endpoints:
//
//	GET  /healthz        liveness
//	GET  /stats          index overview
//	POST /query/knn      {"series":[...],"k":10,"strategy":"mpa|tna|opa|exact|dtw|auto","band":5}
//	POST /query/exact    {"series":[...],"bloom":true}
//	POST /query/range    {"series":[...],"eps":2.5}
//	POST /insert         {"records":[{"RID":1,"Values":[...]}]}
//	POST /delete         {"rids":[1,2]}
//	POST /compact        {}
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tardis-serve: ")

	var (
		indexDir   = flag.String("index", "", "saved index directory (required)")
		listen     = flag.String("listen", "127.0.0.1:8080", "listen address")
		workers    = flag.Int("workers", 8, "cluster workers for parallel operations")
		repair     = flag.Bool("repair", true, "verify and repair damaged index files on load")
		rpcAddrs   = flag.String("rpc", "", "comma-separated tardis-worker addresses enabling the dist/dist-exact strategies")
		rpcTimeout = flag.Duration("rpc-timeout", 0, "per-RPC deadline for worker calls (0 = policy default)")
		retries    = flag.Int("retries", 0, "attempts per worker RPC before failover (0 = policy default)")
	)
	flag.Parse()
	if *indexDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	cl, err := cluster.New(cluster.Config{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	var ix *core.Index
	if *repair {
		var repaired int
		ix, repaired, err = core.LoadWithRepair(cl, *indexDir)
		if err == nil && repaired > 0 {
			fmt.Printf("repaired %d partitions on load\n", repaired)
		}
	} else {
		ix, err = core.Load(cl, *indexDir)
	}
	if err != nil {
		log.Fatal(err)
	}
	total, err := ix.Store.TotalRecords()
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(ix)
	if *rpcAddrs != "" {
		pol := clusterrpc.DefaultPolicy()
		if *rpcTimeout > 0 {
			pol.CallTimeout = *rpcTimeout
		}
		if *retries > 0 {
			pol.MaxAttempts = *retries
		}
		pool, err := clusterrpc.DialContext(context.Background(), strings.Split(*rpcAddrs, ","), pol)
		if err != nil {
			log.Fatal(err)
		}
		defer pool.Close()
		srv.AttachPool(pool)
		fmt.Printf("worker pool: %d of %d workers reachable\n", reachable(pool), pool.Size())
	}
	fmt.Printf("serving %d records (%d partitions, series length %d) on http://%s\n",
		total, ix.NumPartitions(), ix.SeriesLen(), *listen)
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}

func reachable(pool *clusterrpc.Pool) int {
	n := 0
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	statuses, _ := pool.Ping(ctx)
	for _, s := range statuses {
		if s.Err == nil {
			n++
		}
	}
	return n
}
