// Command tardis-serve exposes a saved TARDIS index as a JSON-over-HTTP
// query service.
//
// Usage:
//
//	tardis-serve -index data/idx -listen 127.0.0.1:8080
//	tardis-serve -index data/idx -rpc 127.0.0.1:7701,127.0.0.1:7702 -rpc-timeout 30s -retries 3
//
// Endpoints:
//
//	GET  /healthz        liveness
//	GET  /stats          index overview
//	POST /query/knn      {"series":[...],"k":10,"strategy":"mpa|tna|opa|exact|dtw|auto","band":5}
//	POST /query/exact    {"series":[...],"bloom":true}
//	POST /query/range    {"series":[...],"eps":2.5}
//	POST /insert         {"records":[{"RID":1,"Values":[...]}]}
//	POST /delete         {"rids":[1,2]}
//	POST /compact        {}
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/tardisdb/tardis/internal/cluster"
	clusterrpc "github.com/tardisdb/tardis/internal/cluster/rpc"
	"github.com/tardisdb/tardis/internal/core"
	"github.com/tardisdb/tardis/internal/obs"
	"github.com/tardisdb/tardis/internal/qprof"
	"github.com/tardisdb/tardis/internal/raftlite"
	"github.com/tardisdb/tardis/internal/server"
)

func main() {
	var (
		indexDir   = flag.String("index", "", "saved index directory (required)")
		listen     = flag.String("listen", "127.0.0.1:8080", "listen address")
		workers    = flag.Int("workers", 8, "cluster workers for parallel operations")
		qpar       = flag.Int("query-parallelism", 0, "per-query workers (0 = GOMAXPROCS, 1 = serial)")
		repair     = flag.Bool("repair", true, "verify and repair damaged index files on load")
		rpcAddrs   = flag.String("rpc", "", "comma-separated tardis-worker addresses enabling the dist/dist-exact strategies")
		rpcTimeout = flag.Duration("rpc-timeout", 0, "per-RPC deadline for worker calls (0 = policy default)")
		retries    = flag.Int("retries", 0, "attempts per worker RPC before failover (0 = policy default)")
		coordAddrs = flag.String("coord", "", "comma-separated tardis-coord ensemble addresses (reports the committed map version in /stats)")
		repairEach = flag.Duration("repair-interval", 0, "anti-entropy replica repair period for -rpc indexes (0 = disabled)")
		debugAddr  = flag.String("debug-addr", "", "optional address for the debug server (/metrics, /debug/traces, /debug/pprof)")
		trace      = flag.Bool("trace", false, "collect query trace spans (exported at /debug/traces)")
		sample     = flag.Float64("profile-sample", 0.01, "fraction of queries given full flight-recorder profiles (0 disables, 1 profiles everything; see /debug/queries)")
		slowMS     = flag.Int("slow-query-ms", 250, "queries at or above this duration enter the slow-query ring at /debug/queries (0 records every profiled query, negative disables)")
	)
	applyLog := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	applyLog()
	logger := obs.Logger("tardis-serve")
	obs.SetTracing(*trace)
	qprof.Default().SetSampleRate(*sample)
	qprof.Default().SetSlowThreshold(time.Duration(*slowMS) * time.Millisecond)
	if *indexDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	cl, err := cluster.New(cluster.Config{Workers: *workers})
	if err != nil {
		obs.Fatal(logger, "cluster init failed", "err", err)
	}
	var ix *core.Index
	if *repair {
		var repaired int
		ix, repaired, err = core.LoadWithRepair(cl, *indexDir)
		if err == nil && repaired > 0 {
			logger.Info("repaired partitions on load", "partitions", repaired)
		}
	} else {
		ix, err = core.Load(cl, *indexDir)
	}
	if err != nil {
		obs.Fatal(logger, "index load failed", "index", *indexDir, "err", err)
	}
	if err := ix.SetQueryParallelism(*qpar); err != nil {
		obs.Fatal(logger, "invalid query parallelism", "value", *qpar, "err", err)
	}
	total, err := ix.Store.TotalRecords()
	if err != nil {
		obs.Fatal(logger, "record count failed", "err", err)
	}
	srv := server.New(ix)
	var pool *clusterrpc.Pool
	if *rpcAddrs != "" {
		pol := clusterrpc.DefaultPolicy()
		if *rpcTimeout > 0 {
			pol.CallTimeout = *rpcTimeout
		}
		if *retries > 0 {
			pol.MaxAttempts = *retries
		}
		pool, err = clusterrpc.DialContext(context.Background(), strings.Split(*rpcAddrs, ","), pol)
		if err != nil {
			obs.Fatal(logger, "worker pool dial failed", "err", err)
		}
		defer pool.Close()
		srv.AttachPool(pool)
		logger.Info("worker pool attached", "reachable", reachable(pool), "size", pool.Size())
	}
	var coordClient *raftlite.Client
	if *coordAddrs != "" {
		coordClient, err = raftlite.NewClient(strings.Split(*coordAddrs, ","), 0)
		if err != nil {
			obs.Fatal(logger, "coordinator client failed", "err", err)
		}
		srv.AttachCoordinator(func() (uint64, error) {
			st, err := coordClient.State()
			return st.MapVersion, err
		})
		logger.Info("coordinator attached", "addrs", *coordAddrs)
	}
	if *repairEach > 0 {
		if pool == nil {
			obs.Fatal(logger, "-repair-interval requires -rpc workers")
		}
		rep := &clusterrpc.Repairer{
			Pool:     pool,
			StoreDir: *indexDir,
			Interval: *repairEach,
			Logf:     func(format string, args ...any) { logger.Warn(fmt.Sprintf(format, args...)) },
		}
		if coordClient != nil {
			rep.Coord = coordClient
		}
		rep.Start()
		defer rep.Stop()
		logger.Info("replica repair loop started", "interval", repairEach.String())
	}
	if *debugAddr != "" {
		addr, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			obs.Fatal(logger, "debug server failed", "addr", *debugAddr, "err", err)
		}
		logger.Info("debug server listening", "addr", addr)
	}
	// Listen explicitly so ":0" resolves to a real port before the
	// announcement line; scripts (tools/obssmoke) parse it.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		obs.Fatal(logger, "listen failed", "addr", *listen, "err", err)
	}
	fmt.Printf("serving %d records (%d partitions, series length %d) on http://%s\n",
		total, ix.NumPartitions(), ix.SeriesLen(), ln.Addr())
	logger.Info("serving", "records", total, "partitions", ix.NumPartitions(),
		"series_len", ix.SeriesLen(), "addr", ln.Addr().String())
	obs.Fatal(logger, "http server stopped", "err", http.Serve(ln, srv.Handler()))
}

func reachable(pool *clusterrpc.Pool) int {
	n := 0
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	statuses, _ := pool.Ping(ctx)
	for _, s := range statuses {
		if s.Err == nil {
			n++
		}
	}
	return n
}
