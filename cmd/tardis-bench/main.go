// Command tardis-bench reproduces the paper's evaluation figures at a
// configurable scale, printing paper-style tables.
//
// Usage:
//
//	tardis-bench -fig all -n 20000
//	tardis-bench -fig 15 -n 50000 -queries 20 -k 200
//	tardis-bench -fig 17 -n 20000
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"

	"github.com/tardisdb/tardis/internal/dataset"
	"github.com/tardisdb/tardis/internal/eval"
	"github.com/tardisdb/tardis/internal/obs"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to reproduce: 9|10|11|12|13|14|15|16|17|all")
		n         = flag.Int64("n", 20_000, "dataset size (series per dataset)")
		seriesLen = flag.Int("len", 64, "series length (paper lengths differ per dataset; one length keeps runs comparable)")
		seed      = flag.Int64("seed", 11, "generation seed")
		queries   = flag.Int("queries", 10, "queries per experiment")
		k         = flag.Int("k", 100, "k for kNN experiments")
		workers   = flag.Int("workers", 8, "cluster workers")
		qpar      = flag.Int("query-parallelism", 0, "max per-query workers for -fig parallel (0 = GOMAXPROCS)")
		band      = flag.Int("band", 4, "Sakoe-Chiba band for the DTW stream of -fig parallel")
		workDir   = flag.String("work", "", "working directory for datasets and indexes (default: temp)")
		traceOut  = flag.String("trace", "", "collect trace spans and write the trace trees as JSON to this file (\"-\" = stderr)")
	)
	applyLog := obs.LogFlags(flag.CommandLine)
	flag.Parse()
	applyLog()
	logger := obs.Logger("tardis-bench")
	if *traceOut != "" {
		obs.SetTracing(true)
		defer dumpTraces(logger, *traceOut)
	}

	dir := *workDir
	if dir == "" {
		dir = filepath.Join(os.TempDir(), "tardis-bench-cli")
	}
	e, err := eval.NewEnv(*workers, dir)
	if err != nil {
		obs.Fatal(logger, "eval env init failed", "dir", dir, "err", err)
	}
	block := *n / 10
	if block < 100 {
		block = 100
	}
	var specs []eval.DatasetSpec
	for _, kd := range dataset.Kinds() {
		specs = append(specs, eval.DatasetSpec{
			Kind: kd, SeriesLen: *seriesLen, N: *n, Seed: *seed, BlockRecs: block,
		})
	}
	rwSpec := specs[0]

	known := map[string]bool{"9": true, "10": true, "11": true, "12": true,
		"13": true, "14": true, "15": true, "16": true, "17": true,
		"warm": true, "parallel": true, "all": true}
	if !known[*fig] {
		obs.Fatal(logger, "unknown figure (want 9-17, warm, parallel, or all)", "fig", *fig)
	}
	want := func(id string) bool { return *fig == "all" || *fig == id }
	out := os.Stdout

	if want("9") {
		rows, err := eval.Fig9(e, specs, 8, 1)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportFig9(out, rows)
	}
	if want("10") {
		rows, err := eval.Fig10(e, specs)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportFig10(out, rows)
	}
	if want("11") {
		rows, err := eval.Fig11(e, specs)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportFig11(out, rows)
	}
	if want("12") {
		rows, err := eval.Fig12(e, []int64{*n / 4, *n / 2, *n}, int64(*seriesLen), *seed)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportFig12(out, rows)
	}
	if want("13") {
		rows, err := eval.Fig13(e, specs)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportFig13(out, rows)
	}
	if want("14") {
		rows, err := eval.Fig14(e, specs, *queries)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportFig14(out, rows)
	}
	if want("15") {
		rows, err := eval.Fig15(e, specs, *queries, *k)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportKNN(out, fmt.Sprintf("Fig 15: kNN-approximate performance (k=%d)", *k), rows)
	}
	if want("16") {
		sizes := []int64{*n / 4, *n / 2, *n}
		rows, err := eval.Fig16Size(e, string(rwSpec.Kind), *seriesLen, sizes, *seed, *queries, *k)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportKNN(out, fmt.Sprintf("Fig 16 (left): kNN vs dataset size (k=%d)", *k), rows)
		ks := []int{*k / 10, *k / 2, *k, *k * 5}
		rowsK, err := eval.Fig16K(e, rwSpec, *queries, ks)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportKNN(out, fmt.Sprintf("Fig 16 (right): kNN vs k (%s)", rwSpec.Kind), rowsK)
	}
	if want("17") {
		rows, err := eval.Fig17(e, rwSpec, []float64{0.01, 0.05, 0.1, 0.2, 0.4, 1.0}, *queries, *k)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportFig17(out, rows)
	}
	if want("warm") {
		rows, err := eval.WarmCache(e, rwSpec, *queries, *k)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportWarm(out, rows)
	}
	if want("parallel") {
		counts := eval.DefaultWorkerCounts()
		if *qpar > 0 {
			counts = counts[:0]
			for w := 1; w < *qpar; w *= 2 {
				counts = append(counts, w)
			}
			counts = append(counts, *qpar)
		}
		rows, err := eval.FigParallel(e, rwSpec, *queries, *k, *band, counts)
		if err != nil {
			obs.Fatal(logger, "experiment failed", "fig", *fig, "err", err)
		}
		eval.ReportParallel(out, rows)
	}
}

// dumpTraces writes the collected trace trees to path ("-" = stderr).
func dumpTraces(logger *slog.Logger, path string) {
	w := os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			logger.Error("trace output failed", "path", path, "err", err)
			return
		}
		defer f.Close()
		w = f
	}
	if err := obs.WriteTracesJSON(w); err != nil {
		logger.Error("trace encode failed", "err", err)
	}
}
