GO ?= go

.PHONY: build test race vet lint fmt-check fuzz-short check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the simulated
# cluster, the net/rpc execution mode, and the HTTP server.
race:
	$(GO) test -race ./internal/cluster/... ./internal/server/...

vet:
	$(GO) vet ./...

# Project-specific analyzers (tools/tardislint): iSAX-T signature hygiene,
# mutex guard annotations, write-path close errors, goroutine lifecycle.
lint:
	$(GO) run ./tools/tardislint ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Short fuzz of the three deserializer targets — a smoke pass, not a soak.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=10s ./internal/isaxt/
	$(GO) test -run='^$$' -fuzz=FuzzReadTree -fuzztime=10s ./internal/sigtree/
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshal -fuzztime=10s ./internal/bloom/

# The full gate CI runs.
check: build test race vet fmt-check lint
