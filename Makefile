GO ?= go

.PHONY: build test race vet lint fmt-check fuzz-short bench-smoke bench-parallel faultinj obs-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the simulated
# cluster, the net/rpc execution mode, the HTTP server, the partition cache,
# the query fan-out in core, and the intra-query work-stealing pool.
race:
	$(GO) test -race ./internal/cluster/... ./internal/server/... ./internal/pcache/ ./internal/core/ ./internal/qpar/

# One iteration of every benchmark — catches bit-rot in the bench harness
# without paying for real measurements.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

# Intra-query parallelism gate: FigParallel sweeps per-query worker counts
# over warm exact and DTW streams and errors on any cross-count result
# mismatch, so a pass proves the qpar layer is exact. Speedup is only
# asserted on multi-core runners.
bench-parallel:
	$(GO) test -run TestParallelSmoke -v ./internal/eval/

# Deterministic fault-injection suite under the race detector: worker killed
# mid-Spill, hung worker during exact kNN, partition loss during approximate
# queries, a seeded matrix of random transport faults, and the replication
# matrix — every single-worker kill under R=2 (bit-exact, non-degraded kNN),
# worker death during a replicated build, canonical partition loss served
# from replicas, corrupt-replica quarantine + repair, breaker flap, membership
# churn, and a coordinator leader kill (internal/faultinj schedules are
# seeded, so every run sees the same fault sequence).
faultinj:
	$(GO) test -race -run TestFaultInjection ./internal/...

vet:
	$(GO) vet ./...

# Project-specific analyzers (tools/tardislint): iSAX-T signature hygiene,
# path-sensitive mutex guards (lockflow), unchecked errors (errflow),
# hot-path allocations (hotalloc), write-path close errors, goroutine
# lifecycle, context-first RPC signatures (ctxfirst), telemetry naming /
# label-cardinality discipline (metricname), and the interprocedural trio —
# lock-order deadlock cycles (lockorder), dropped-context blocking
# (ctxflow), and data races via lock-set inference over concurrency roots
# (racecheck) — plus the stale-suppression audit (suppresscheck). The patterns
# are explicit so the gate provably covers the library root, the CLIs, the
# examples, and the linter itself (self-lint). -timing surfaces per-pass
# wall time so analyzer-cost regressions show up in CI logs. Runs after vet
# so cheap universal checks fail first.
lint: vet
	$(GO) run ./tools/tardislint -timing . ./internal/... ./cmd/... ./examples/... ./tools/...

# Observability end-to-end gate: builds tardis-serve, boots it over a tiny
# fresh index, runs a query, and validates the /metrics exposition (strict
# parse + required families per subsystem) and /debug/traces JSON.
obs-smoke:
	$(GO) run ./tools/obssmoke

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Short fuzz of the deserializer targets, the batched distance kernels, the
# lint CFG builder, and the interprocedural call-graph engine — a smoke
# pass, not a soak.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzDecode -fuzztime=10s ./internal/isaxt/
	$(GO) test -run='^$$' -fuzz=FuzzBatchMinDistPAA -fuzztime=10s ./internal/ts/
	$(GO) test -run='^$$' -fuzz=FuzzReadTree -fuzztime=10s ./internal/sigtree/
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshal -fuzztime=10s ./internal/bloom/
	$(GO) test -run='^$$' -fuzz=FuzzBuild -fuzztime=10s ./tools/tardislint/internal/lint/cfg/
	$(GO) test -run='^$$' -fuzz=FuzzSummaries -fuzztime=10s ./tools/tardislint/internal/lint/callgraph/
	$(GO) test -run='^$$' -fuzz=FuzzAccessSummaries -fuzztime=10s ./tools/tardislint/internal/lint/callgraph/

# The full gate CI runs.
check: build test race faultinj vet fmt-check lint bench-smoke bench-parallel obs-smoke
